// Package faults is the deterministic fault-injection subsystem: it
// schedules scripted and seeded-random fault windows against a running
// simulation entirely on the virtual clock (no wall time anywhere — the
// same determinism rules as every other simulation package apply, so a
// seeded fault scenario is byte-for-byte reproducible across runs and
// across sweep parallelism levels).
//
// A fault window is pure data (Window/Config, JSON-marshalable), so a
// fault scenario participates in the sweep cache key exactly like every
// other configuration knob: changing a window invalidates exactly the
// affected points. The runtime side is the Injector, constructed per run
// from the config; it pre-schedules every window boundary on the engine
// and answers point-in-time queries from the layers it degrades:
//
//   - pfs: Degrade/Outage windows scale a channel's effective capacity
//     (composing with the stationary noise model) via PFS.SetFaultFactors.
//   - adio: ServerStall windows stretch the storm-queue latency,
//     Straggler windows slow one node's transfers, IOError windows make
//     sub-requests fail transiently — the agent retries with exponential
//     backoff on the simulated clock (adio.FaultModel is this package's
//     Injector).
//   - tmio/sched: Overlaps is the fault oracle the tracer and the cluster
//     monitor use to quarantine B_ij feedback measured inside a window,
//     so an outage cannot poison the next phase's limit.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iobehind/internal/des"
	"iobehind/internal/pfs"
)

// Kind classifies a fault window.
type Kind int

const (
	// Degrade scales the class channel's capacity by Factor in (0,1).
	Degrade Kind = iota
	// Outage drops the class channel's capacity to the file-system floor
	// (pfs clamps to 1 B/s — flows stall for the window but never abort).
	Outage
	// ServerStall multiplies the storm-queue latency of the class by
	// Factor (>= 1): the servers are up but swamped.
	ServerStall
	// Straggler slows every transfer of one node (Window.Node) by Factor
	// (>= 1), on both classes.
	Straggler
	// IOError makes each sub-request of the class fail with probability
	// Prob; the ADIO agent retries with exponential backoff.
	IOError
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Degrade:
		return "degrade"
	case Outage:
		return "outage"
	case ServerStall:
		return "server-stall"
	case Straggler:
		return "straggler"
	case IOError:
		return "io-error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Window is one scheduled fault: Kind-specific behaviour active during
// [Start, Start+Duration). Pure data — it JSON-encodes into sweep cache
// keys.
type Window struct {
	Kind  Kind         `json:"kind"`
	Class pfs.Class    `json:"class"`
	Start des.Time     `json:"start"`
	Dur   des.Duration `json:"dur"`
	// Factor is the capacity fraction for Degrade (in (0,1)), the latency
	// multiplier for ServerStall, or the slowdown for Straggler (>= 1).
	Factor float64 `json:"factor,omitempty"`
	// Node is the straggler's node id (matched against pfs.Tag.Node).
	Node int `json:"node,omitempty"`
	// Prob is the per-sub-request failure probability for IOError.
	Prob float64 `json:"prob,omitempty"`
}

// End returns the exclusive end of the window.
func (w Window) End() des.Time { return w.Start.Add(w.Dur) }

// overlaps reports whether the window intersects [from, to).
func (w Window) overlaps(from, to des.Time) bool {
	return w.Start < to && from < w.End()
}

// activeAt reports whether the window is in force at t.
func (w Window) activeAt(t des.Time) bool {
	return w.Start <= t && t < w.End()
}

// validate rejects windows the injector cannot schedule.
func (w Window) validate() error {
	if w.Dur <= 0 {
		return fmt.Errorf("faults: %s window at %v has non-positive duration %v", w.Kind, w.Start, w.Dur)
	}
	if w.Start < 0 {
		return fmt.Errorf("faults: %s window starts before t=0", w.Kind)
	}
	switch w.Kind {
	case Degrade:
		if w.Factor <= 0 || w.Factor >= 1 {
			return fmt.Errorf("faults: degrade factor %g outside (0,1)", w.Factor)
		}
	case ServerStall, Straggler:
		if w.Factor < 1 {
			return fmt.Errorf("faults: %s factor %g below 1", w.Kind, w.Factor)
		}
	case IOError:
		if w.Prob <= 0 || w.Prob > 1 {
			return fmt.Errorf("faults: io-error probability %g outside (0,1]", w.Prob)
		}
	}
	return nil
}

// RandomConfig generates seeded-random windows in addition to (or instead
// of) scripted ones. Generation happens at Injector construction from its
// own rand.Rand seeded with Seed, so it never perturbs the engine's draw
// order and is identical across runs and parallelism levels.
type RandomConfig struct {
	// Seed drives the generator; 0 defaults to 1.
	Seed int64 `json:"seed"`
	// Count is how many windows to generate.
	Count int `json:"count"`
	// Horizon bounds the window start times: starts are uniform in
	// [0, Horizon).
	Horizon des.Duration `json:"horizon"`
	// MeanDur is the mean (exponential) window duration. Defaults to
	// Horizon/20.
	MeanDur des.Duration `json:"mean_dur,omitempty"`
	// Kinds to draw from; empty means {Degrade, ServerStall, IOError}
	// (Outage and Straggler are disruptive enough that they are opt-in).
	Kinds []Kind `json:"kinds,omitempty"`
	// Class targeted by the generated windows (Straggler ignores it).
	Class pfs.Class `json:"class,omitempty"`
	// Nodes bounds the straggler node draw to [0, Nodes); 0 means node 0.
	Nodes int `json:"nodes,omitempty"`
}

// Config is a complete fault scenario: scripted windows plus an optional
// random batch. The zero value injects nothing. Pure data — embed it in a
// cluster or experiment config and it hashes into the sweep cache key.
type Config struct {
	Windows []Window      `json:"windows,omitempty"`
	Random  *RandomConfig `json:"random,omitempty"`
}

// Empty reports whether the scenario injects nothing.
func (c Config) Empty() bool {
	return len(c.Windows) == 0 && (c.Random == nil || c.Random.Count <= 0)
}

// generate materializes the random batch.
func (rc RandomConfig) generate() []Window {
	if rc.Count <= 0 || rc.Horizon <= 0 {
		return nil
	}
	seed := rc.Seed
	if seed == 0 {
		seed = 1
	}
	mean := rc.MeanDur
	if mean <= 0 {
		mean = rc.Horizon / 20
	}
	kinds := rc.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{Degrade, ServerStall, IOError}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Window, 0, rc.Count)
	for i := 0; i < rc.Count; i++ {
		w := Window{
			Kind:  kinds[rng.Intn(len(kinds))],
			Class: rc.Class,
			Start: des.Time(des.DurationOf(rng.Float64() * rc.Horizon.Seconds())),
			Dur:   des.DurationOf(rng.ExpFloat64() * mean.Seconds()),
		}
		if w.Dur < des.Millisecond {
			w.Dur = des.Millisecond
		}
		switch w.Kind {
		case Degrade:
			w.Factor = 0.1 + 0.6*rng.Float64()
		case ServerStall:
			w.Factor = 2 + 8*rng.Float64()
		case Straggler:
			w.Factor = 2 + 6*rng.Float64()
			if rc.Nodes > 1 {
				w.Node = rng.Intn(rc.Nodes)
			}
		case IOError:
			w.Prob = 0.05 + 0.25*rng.Float64()
		}
		out = append(out, w)
	}
	return out
}

// Injector is the runtime side of a fault scenario: it owns the resolved
// window list and the currently active fault state, updated by boundary
// events pre-scheduled on the engine. Everything runs on the engine's
// single logical thread.
type Injector struct {
	e  *des.Engine
	fs *pfs.PFS

	windows []Window

	// Active state, recomputed at every window boundary.
	stall   [2]float64      // storm-latency multiplier per class, >= 1
	errProb [2]float64      // sub-request failure probability per class
	slow    map[int]float64 // node -> transfer slowdown, >= 1

	activations int // window starts reached so far
}

// New resolves cfg (scripted + generated windows, sorted deterministically),
// schedules every window boundary on the engine, and returns the injector.
// Invalid windows panic: a fault scenario is configuration, and bad
// configuration should fail loudly at construction, not mid-run.
func New(e *des.Engine, fs *pfs.PFS, cfg Config) *Injector {
	ws := append([]Window(nil), cfg.Windows...)
	if cfg.Random != nil {
		ws = append(ws, cfg.Random.generate()...)
	}
	for _, w := range ws {
		if err := w.validate(); err != nil {
			panic(err.Error())
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Node < b.Node
	})
	inj := &Injector{
		e: e, fs: fs,
		windows: ws,
		stall:   [2]float64{1, 1},
		slow:    make(map[int]float64),
	}
	// Boundary events run at PrioEarly so capacity changes are in force
	// before any process activity at the same instant; the channel's
	// recompute runs after PrioLate anyway.
	for _, w := range inj.windows {
		inj.e.Schedule(w.Start, des.PrioEarly, func() {
			inj.activations++
			inj.refresh()
		})
		inj.e.Schedule(w.End(), des.PrioEarly, inj.refresh)
	}
	inj.refresh()
	return inj
}

// refresh recomputes the active fault state from scratch — robust against
// overlapping windows of the same kind (strictest wins) — and pushes the
// capacity factors into the file system.
func (inj *Injector) refresh() {
	now := inj.e.Now()
	capf := [2]float64{1, 1}
	stall := [2]float64{1, 1}
	errp := [2]float64{0, 0}
	clear(inj.slow)
	for _, w := range inj.windows {
		if !w.activeAt(now) {
			continue
		}
		switch w.Kind {
		case Degrade:
			if w.Factor < capf[w.Class] {
				capf[w.Class] = w.Factor
			}
		case Outage:
			capf[w.Class] = 0
		case ServerStall:
			if w.Factor > stall[w.Class] {
				stall[w.Class] = w.Factor
			}
		case Straggler:
			if w.Factor > inj.slow[w.Node] {
				inj.slow[w.Node] = w.Factor
			}
		case IOError:
			if w.Prob > errp[w.Class] {
				errp[w.Class] = w.Prob
			}
		}
	}
	inj.stall = stall
	inj.errProb = errp
	if inj.fs != nil {
		inj.fs.SetFaultFactors(capf[pfs.Write], capf[pfs.Read])
	}
}

// Windows returns the resolved window list (scripted + generated, sorted).
func (inj *Injector) Windows() []Window {
	return append([]Window(nil), inj.windows...)
}

// Activations returns how many window starts the simulation has reached.
func (inj *Injector) Activations() int { return inj.activations }

// Overlaps reports whether any fault window affecting the class overlaps
// [from, to). Straggler windows affect both classes (a slow node is slow
// in every direction). This is the fault oracle the tracer and the
// cluster monitor use to quarantine feedback measured inside a window.
func (inj *Injector) Overlaps(class pfs.Class, from, to des.Time) bool {
	for _, w := range inj.windows {
		if !w.overlaps(from, to) {
			continue
		}
		if w.Kind == Straggler || w.Class == class {
			return true
		}
	}
	return false
}

// QueueFactor implements adio.FaultModel: the storm-latency multiplier
// currently in force for the class (1 when no server-stall window is
// active).
func (inj *Injector) QueueFactor(class pfs.Class) float64 { return inj.stall[class] }

// NodeSlowdown implements adio.FaultModel: the transfer slowdown of one
// node (1 when the node is healthy).
func (inj *Injector) NodeSlowdown(node int) float64 {
	if f, ok := inj.slow[node]; ok && f > 1 && !math.IsNaN(f) {
		return f
	}
	return 1
}

// ErrorProb implements adio.FaultModel: the transient-failure probability
// per sub-request currently in force for the class.
func (inj *Injector) ErrorProb(class pfs.Class) float64 { return inj.errProb[class] }
