// Package workloads models the two applications of the paper's evaluation:
// the modified HACC-IO benchmark (Sec. VI-B, Fig. 12) and the WaComM++
// pollutant-transport kernel (Sec. VI-A), plus a generic phased I/O kernel
// for examples and tests. The models reproduce the applications' phase
// structure — which is what the paper's metrics measure — with calibrated
// durations.
package workloads

import (
	"fmt"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// HaccConfig parameterizes the modified HACC-IO benchmark. The vanilla
// benchmark fills per-rank particle arrays, writes them with individual
// file pointers to distinct files, reads them back and verifies. The
// paper's modification (Fig. 12) wraps compute/write/read/verify in a loop
// and makes the data I/O asynchronous: the write overlaps the verify block
// and the read overlaps the next loop's compute block, with MPI_Wait
// fences at the block ends and a memcpy before the write's wait.
type HaccConfig struct {
	// Loops is the number of compute/write/read/verify rounds (paper: 10).
	Loops int
	// ParticlesPerRank scales the per-rank arrays. 38 bytes per particle
	// (the nine HACC-IO variables). Default 5.5e6, calibrated so the
	// 1-rank required bandwidth lands at the paper's ≈0.7 GB/s.
	ParticlesPerRank int64
	// BytesPerParticle defaults to 38.
	BytesPerParticle int64
	// HeaderBytes is the synchronous metadata header write. Default 4 KiB.
	HeaderBytes int64
	// ComputeBase is the compute-block duration at 1 rank. Default 300 ms.
	ComputeBase des.Duration
	// VerifyFactor scales the verify block relative to compute. Default 1:
	// the verify block re-reads and compares the full arrays, costing
	// about as much as filling them. Symmetric blocks also give the write
	// and read phases matching required bandwidths, which keeps the
	// alternating limiter stable — the paper reports near-zero waiting for
	// all strategies.
	VerifyFactor float64
	// PhaseGrowthExp makes phases grow as ranks^exp, the empirical fit to
	// the paper's reported phase lengths (0.6 s at 1 rank → 105 s at 9216,
	// attributed to the global broadcasts added "for more variability").
	// Default 0.565. Set 0 for scale-independent phases (used for the
	// Fig. 13/14 time-series runs, whose x-axes show ~10 s loops).
	PhaseGrowthExp float64
	// FixedPhase overrides the grown compute duration when positive.
	FixedPhase des.Duration
	// BcastBytes is the payload of the per-block global broadcast. Default 8.
	BcastBytes int64
	// MemcpyRate models the data copy before the write's wait, bytes/s.
	// Default 10 GB/s.
	MemcpyRate float64
	// JitterFraction de-synchronizes ranks: each block is stretched by a
	// uniform random fraction in [0, JitterFraction). Default 0.03.
	JitterFraction float64
}

// WithDefaults fills zero fields.
func (c HaccConfig) WithDefaults() HaccConfig {
	if c.Loops <= 0 {
		c.Loops = 10
	}
	if c.ParticlesPerRank <= 0 {
		c.ParticlesPerRank = 5_500_000
	}
	if c.BytesPerParticle <= 0 {
		c.BytesPerParticle = 38
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 4096
	}
	if c.ComputeBase <= 0 {
		c.ComputeBase = 300 * des.Millisecond
	}
	if c.VerifyFactor <= 0 {
		c.VerifyFactor = 1
	}
	if c.PhaseGrowthExp == 0 && c.FixedPhase <= 0 {
		c.PhaseGrowthExp = 0.565
	}
	if c.BcastBytes <= 0 {
		c.BcastBytes = 8
	}
	if c.MemcpyRate <= 0 {
		c.MemcpyRate = 10e9
	}
	if c.JitterFraction < 0 {
		c.JitterFraction = 0
	} else if c.JitterFraction == 0 {
		c.JitterFraction = 0.03
	}
	return c
}

// DataBytes returns the per-rank array size written and read each loop.
func (c HaccConfig) DataBytes() int64 {
	d := c.WithDefaults()
	return d.ParticlesPerRank * d.BytesPerParticle
}

// ComputeDuration returns the compute-block length for a world of n ranks.
func (c HaccConfig) ComputeDuration(n int) des.Duration {
	d := c.WithDefaults()
	if d.FixedPhase > 0 {
		return d.FixedPhase
	}
	return des.DurationOf(d.ComputeBase.Seconds() * math.Pow(float64(n), d.PhaseGrowthExp))
}

// VerifyDuration returns the verify-block length for n ranks.
func (c HaccConfig) VerifyDuration(n int) des.Duration {
	d := c.WithDefaults()
	return des.DurationOf(d.ComputeDuration(n).Seconds() * d.VerifyFactor)
}

// HaccMain returns the per-rank main function of the modified HACC-IO
// benchmark, following Fig. 12:
//
//	loop {
//	    compute (fill arrays, bcast)   | previous read in background
//	    wait(read)
//	    write header (sync), iwrite data
//	    verify (compare, bcast, memcpy)| write in background
//	    wait(write)
//	    iread data                     | overlaps next compute
//	}
func HaccMain(sys *mpiio.System, cfg HaccConfig) func(*mpi.Rank) {
	cfg = cfg.WithDefaults()
	return func(r *mpi.Rank) {
		n := r.World().Size()
		dataBytes := cfg.DataBytes()
		compute := cfg.ComputeDuration(n)
		verify := cfg.VerifyDuration(n)
		memcpyDur := des.DurationOf(float64(dataBytes) / cfg.MemcpyRate)
		f := sys.Open(r, fmt.Sprintf("hacc-%06d.bin", r.ID()))

		jitter := func(d des.Duration) des.Duration {
			if cfg.JitterFraction <= 0 {
				return d
			}
			max := des.Duration(float64(d) * cfg.JitterFraction)
			return d + r.Jitter(max)
		}

		var readReq *mpiio.Request
		for loop := 0; loop < cfg.Loops; loop++ {
			// Compute block: fill the arrays; the previous loop's read
			// proceeds in the background.
			r.Compute(jitter(compute))
			r.Bcast(0, cfg.BcastBytes)
			if readReq != nil {
				readReq.Wait()
				readReq = nil
			}

			// Header (metadata) is written synchronously, then the data
			// write is issued asynchronously over the verify block.
			f.WriteAt(0, cfg.HeaderBytes)
			writeReq := f.IwriteAt(int64(loop)*dataBytes, dataBytes)

			// Verify block: compare the previous data, broadcast, and
			// memcpy the fresh arrays aside just before the write fence.
			r.Compute(jitter(verify))
			r.Bcast(0, cfg.BcastBytes)
			r.Compute(memcpyDur)
			writeReq.Wait()

			// Read back asynchronously; it overlaps the next compute.
			readReq = f.IreadAt(int64(loop)*dataBytes, dataBytes)
		}
		// The last read-back still has a verify block to compare against,
		// so it too completes behind the scenes.
		if readReq != nil {
			r.Compute(jitter(verify))
			readReq.Wait()
		}
		r.Finalize()
	}
}
