package workloads

import (
	"math"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
)

type stack struct {
	e   *des.Engine
	w   *mpi.World
	fs  *pfs.PFS
	sys *mpiio.System
	tr  *tmio.Tracer
}

func newStack(t *testing.T, ranks int, strat tmio.StrategyConfig) *stack {
	t.Helper()
	e := des.NewEngine(7)
	w := mpi.NewWorld(e, mpi.Config{Size: ranks})
	fs := pfs.New(e, pfs.LichtenbergConfig())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{Strategy: strat, DisableOverhead: true})
	return &stack{e: e, w: w, fs: fs, sys: sys, tr: tr}
}

func TestHaccConfigDefaults(t *testing.T) {
	cfg := HaccConfig{}.WithDefaults()
	if cfg.Loops != 10 || cfg.BytesPerParticle != 38 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.DataBytes(); got != 5_500_000*38 {
		t.Fatalf("data bytes = %d", got)
	}
	// Phase growth: compute+verify ≈ 0.6 s at 1 rank and ≈105 s at 9216
	// ranks, the paper's quoted span.
	phase := func(n int) float64 {
		return cfg.ComputeDuration(n).Seconds() + cfg.VerifyDuration(n).Seconds()
	}
	if got := phase(1); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("phase(1) = %v, want 0.6", got)
	}
	if got := phase(9216); got < 90 || got > 120 {
		t.Fatalf("phase(9216) = %v, want ≈105", got)
	}
	// The 1-rank required bandwidth ≈ paper's 0.7 GB/s.
	if b := float64(cfg.DataBytes()) / cfg.VerifyDuration(1).Seconds(); b < 0.55e9 || b > 0.85e9 {
		t.Fatalf("B(1) = %v, want ≈0.7e9", b)
	}
	fixed := HaccConfig{FixedPhase: des.Second}.WithDefaults()
	if fixed.ComputeDuration(9216) != des.Second {
		t.Fatal("FixedPhase not honoured")
	}
}

func TestHaccPhaseStructure(t *testing.T) {
	s := newStack(t, 2, tmio.StrategyConfig{})
	cfg := HaccConfig{
		Loops:            3,
		ParticlesPerRank: 100_000,
		FixedPhase:       200 * des.Millisecond,
		JitterFraction:   -1, // disabled
	}
	if err := s.w.Run(HaccMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	// Per loop: one async write + one async read per rank.
	if rep.AsyncOps != 2*3*2 {
		t.Fatalf("async ops = %d, want 12", rep.AsyncOps)
	}
	// One sync header write per loop per rank.
	if rep.SyncOps != 2*3 {
		t.Fatalf("sync ops = %d, want 6", rep.SyncOps)
	}
	// Write and read phases alternate: reads and writes both present.
	if rep.TotalBytes[pfs.Write] <= 0 || rep.TotalBytes[pfs.Read] <= 0 {
		t.Fatalf("bytes: %v", rep.TotalBytes)
	}
	// Writes: header (sync) + data (async) per loop; async write bytes ==
	// async read bytes.
	wantData := int64(100_000) * 38 * 3 * 2
	if rep.TotalBytes[pfs.Read] != wantData {
		t.Fatalf("read bytes = %d, want %d", rep.TotalBytes[pfs.Read], wantData)
	}
}

func TestHaccRequiredBandwidthScalesWithRanks(t *testing.T) {
	required := func(ranks int) float64 {
		s := newStack(t, ranks, tmio.StrategyConfig{})
		cfg := HaccConfig{Loops: 2, ParticlesPerRank: 1_000_000}
		if err := s.w.Run(HaccMain(s.sys, cfg)); err != nil {
			t.Fatal(err)
		}
		return s.tr.Report().RequiredBandwidth
	}
	b1, b8 := required(1), required(8)
	if b8 <= b1 {
		t.Fatalf("required bandwidth should grow with ranks: %v vs %v", b1, b8)
	}
	// Growth is sublinear in ranks because the phases lengthen too.
	if b8 >= 8*b1 {
		t.Fatalf("required bandwidth grew superlinearly: %v vs %v", b1, b8)
	}
}

func TestHaccLimitingIncreasesExploit(t *testing.T) {
	run := func(strat tmio.StrategyConfig) tmio.Distribution {
		s := newStack(t, 4, strat)
		cfg := HaccConfig{Loops: 5, ParticlesPerRank: 2_000_000, FixedPhase: 500 * des.Millisecond}
		if err := s.w.Run(HaccMain(s.sys, cfg)); err != nil {
			t.Fatal(err)
		}
		return s.tr.Report().Distribution()
	}
	limited := run(tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1})
	unlimited := run(tmio.StrategyConfig{})
	if limited.ExploitTotal() <= unlimited.ExploitTotal() {
		t.Fatalf("limiting should raise exploit: %v vs %v",
			limited.ExploitTotal(), unlimited.ExploitTotal())
	}
	// The paper's headline: wait time stays negligible under limiting.
	if lost := limited.AsyncWriteLost + limited.AsyncReadLost; lost > 5 {
		t.Fatalf("limited run lost = %v%%, want small", lost)
	}
}

func TestHaccRuntimeNotSignificantlyChangedByLimiting(t *testing.T) {
	run := func(strat tmio.StrategyConfig) des.Duration {
		s := newStack(t, 4, strat)
		cfg := HaccConfig{Loops: 4, ParticlesPerRank: 2_000_000, FixedPhase: 500 * des.Millisecond}
		if err := s.w.Run(HaccMain(s.sys, cfg)); err != nil {
			t.Fatal(err)
		}
		return s.tr.Report().AppTime
	}
	limited := run(tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1})
	unlimited := run(tmio.StrategyConfig{})
	delta := math.Abs(limited.Seconds()-unlimited.Seconds()) / unlimited.Seconds()
	if delta > 0.05 {
		t.Fatalf("limiting changed runtime by %.1f%% (limited %v, unlimited %v)",
			100*delta, limited, unlimited)
	}
}

func TestWacommConfigDefaults(t *testing.T) {
	cfg := WacommConfig{}.WithDefaults()
	if cfg.Particles != 2_000_000 || cfg.Iterations != 50 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.TotalBytes(); got != 2_000_000*48 {
		t.Fatalf("total bytes = %d", got)
	}
	if got := cfg.BytesPerRank(96); got != 2_000_000*48/96 {
		t.Fatalf("bytes/rank = %d", got)
	}
	// Calibration anchors: ≈0.62 s at 96 ranks, ≈2.3 s at 9216 ranks.
	if got := cfg.IterationDuration(96).Seconds(); got < 0.5 || got > 0.75 {
		t.Fatalf("iteration(96) = %v, want ≈0.6", got)
	}
	if got := cfg.IterationDuration(9216).Seconds(); got < 2.0 || got > 2.6 {
		t.Fatalf("iteration(9216) = %v, want ≈2.3", got)
	}
}

func TestWacommStructure(t *testing.T) {
	s := newStack(t, 4, tmio.StrategyConfig{})
	cfg := WacommConfig{
		Particles:      40_000,
		Iterations:     5,
		ReadEvery:      2,
		JitterFraction: -1,
	}
	if err := s.w.Run(WacommMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	// One async write per rank per iteration.
	if rep.AsyncOps != 4*5 {
		t.Fatalf("async ops = %d, want 20", rep.AsyncOps)
	}
	// Sync ops: rank 0's initial read + 2 hourly reads (it=2, it=4) +
	// one final write per rank.
	if rep.SyncOps != 3+4 {
		t.Fatalf("sync ops = %d, want 7", rep.SyncOps)
	}
	if rep.TotalBytes[pfs.Read] == 0 {
		t.Fatal("no read traffic")
	}
}

func TestWacommThroughputFollowsLimit(t *testing.T) {
	// The Fig. 9 property: with up-only, T of phase j+1 ≈ B_L of phase j,
	// far below the unthrottled burst rate.
	s := newStack(t, 8, tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1})
	cfg := WacommConfig{Particles: 4_000_000, Iterations: 8, JitterFraction: -1}
	if err := s.w.Run(WacommMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	if len(rep.BLPhases) == 0 {
		t.Fatal("no B_L phases")
	}
	// The first phase runs before any limit exists (Fig. 9's purple line);
	// from phase 2 on, each rank's measured throughput must track the
	// applied limit instead of the FS-speed burst rate.
	var blMax float64
	for _, ph := range rep.BLPhases {
		if ph.Value > blMax {
			blMax = ph.Value
		}
	}
	for _, ph := range rep.TPhases {
		if ph.Index < 2 {
			continue
		}
		if ph.Value > 2.2*blMax {
			t.Fatalf("throttled phase %d of rank %d ran at %v, limit peak %v",
				ph.Index, ph.Rank, ph.Value, blMax)
		}
	}
	if blMax > 1e9 {
		t.Fatalf("B_L peak %v should be far below FS speed", blMax)
	}
}

func TestWacommUnlimitedBursts(t *testing.T) {
	s := newStack(t, 8, tmio.StrategyConfig{})
	cfg := WacommConfig{Particles: 4_000_000, Iterations: 8, JitterFraction: -1}
	if err := s.w.Run(WacommMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	// Unthrottled bursts run at FS speed: application-level T in the
	// multi-GB/s range, far above the required bandwidth.
	if tMax := rep.TSeries().Max(); tMax < 1e9 {
		t.Fatalf("unthrottled T peak = %v, want burst-level", tMax)
	}
	if rep.TSeries().Max() < 10*rep.RequiredBandwidth {
		t.Fatalf("burst should dwarf required bandwidth: T=%v B=%v",
			rep.TSeries().Max(), rep.RequiredBandwidth)
	}
}

func TestPhasedMainDefaults(t *testing.T) {
	s := newStack(t, 2, tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.5})
	if err := s.w.Run(PhasedMain(s.sys, PhasedConfig{
		Phases: 4, BytesPerPhase: 1 << 20, Compute: 100 * des.Millisecond,
		Collective: true,
	})); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	if rep.AsyncOps != 8 {
		t.Fatalf("async ops = %d", rep.AsyncOps)
	}
	if len(rep.BPhases) != 8 {
		t.Fatalf("B phases = %d", len(rep.BPhases))
	}
	if rep.FirstLimitAt == 0 {
		t.Fatal("limit never applied")
	}
	def := PhasedConfig{}.WithDefaults()
	if def.Phases != 10 || def.BytesPerPhase != 64<<20 || def.Compute != des.Second {
		t.Fatalf("defaults: %+v", def)
	}
}

func TestIorDefaults(t *testing.T) {
	cfg := IorConfig{}.WithDefaults()
	if cfg.Segments != 4 || cfg.BlockSize != 256<<20 || cfg.TransferSize != 16<<20 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.TotalBytesPerRank(); got != 4*(256<<20) {
		t.Fatalf("total = %d", got)
	}
	clamped := IorConfig{BlockSize: 1 << 20, TransferSize: 8 << 20}.WithDefaults()
	if clamped.TransferSize != 1<<20 {
		t.Fatal("transfer size not clamped to block size")
	}
}

func TestIorIndividualWriteBandwidth(t *testing.T) {
	s := newStack(t, 4, tmio.StrategyConfig{})
	cfg := IorConfig{Segments: 2, BlockSize: 64 << 20, TransferSize: 16 << 20}
	if err := s.w.Run(IorMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	wantBytes := int64(4) * cfg.TotalBytesPerRank()
	if rep.TotalBytes[pfs.Write] != wantBytes {
		t.Fatalf("bytes = %d, want %d", rep.TotalBytes[pfs.Write], wantBytes)
	}
	// 512 MiB over a 106 GB/s system ≈ 5 ms; the run is I/O-bound.
	if rep.AppTime.Seconds() > 0.1 {
		t.Fatalf("runtime = %v", rep.AppTime)
	}
}

func TestIorReadBackAndModes(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  IorConfig
	}{
		{"individual", IorConfig{Segments: 1, BlockSize: 8 << 20, ReadBack: true}},
		{"collective", IorConfig{Segments: 1, BlockSize: 8 << 20, ReadBack: true, Collective: true}},
		{"async", IorConfig{Segments: 2, BlockSize: 8 << 20, ReadBack: true, Async: true,
			ComputeBetween: 50 * des.Millisecond}},
	} {
		s := newStack(t, 4, tmio.StrategyConfig{})
		if err := s.w.Run(IorMain(s.sys, mode.cfg)); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		rep := s.tr.Report()
		if rep.TotalBytes[pfs.Write] == 0 || rep.TotalBytes[pfs.Read] == 0 {
			t.Fatalf("%s: bytes %v", mode.name, rep.TotalBytes)
		}
	}
}

func TestIorAsyncOverlap(t *testing.T) {
	s := newStack(t, 2, tmio.StrategyConfig{})
	cfg := IorConfig{
		Segments: 4, BlockSize: 16 << 20, TransferSize: 16 << 20,
		Async: true, ComputeBetween: 200 * des.Millisecond,
	}
	if err := s.w.Run(IorMain(s.sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := s.tr.Report()
	// All writes but the last are hidden behind compute: runtime ≈ the
	// compute total, and no waits occur.
	if got := rep.Distribution().AsyncWriteLost; got > 1 {
		t.Fatalf("async IOR lost = %v%%", got)
	}
	if rep.AsyncOps != 2*4 {
		t.Fatalf("async ops = %d", rep.AsyncOps)
	}
}

func TestWacommHierarchicalScalesBetter(t *testing.T) {
	cfg := WacommConfig{}
	flat := cfg.IterationDuration(9216)
	h := cfg
	h.Hierarchical = true
	hier := h.IterationDuration(9216)
	// Flat: 9216 serial per-rank steps at the master. Hierarchical:
	// 96 per-node steps + 96 in-node steps — ~48× less distribution cost.
	if hier >= flat/2 {
		t.Fatalf("hierarchical %v not much below flat %v", hier, flat)
	}
	// At one node the two models are within one distribution step of each
	// other (nodes=1 adds a single extra hop).
	d := h.IterationDuration(48) - cfg.IterationDuration(48)
	if d < 0 || d > h.WithDefaults().DistributionPerRank {
		t.Fatalf("one-node difference = %v", d)
	}
}

func TestWacommHierarchicalRuns(t *testing.T) {
	e := des.NewEngine(7)
	w := mpi.NewWorld(e, mpi.Config{Size: 8, RanksPerNode: 4})
	fs := pfs.New(e, pfs.LichtenbergConfig())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{DisableOverhead: true})
	cfg := WacommConfig{
		Particles: 80_000, Iterations: 4, Hierarchical: true, JitterFraction: -1,
	}
	if err := w.Run(WacommMain(sys, cfg)); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.AsyncOps != 8*4 {
		t.Fatalf("async ops = %d", rep.AsyncOps)
	}
}
