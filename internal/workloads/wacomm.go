package workloads

import (
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// WacommConfig parameterizes the WaComM++ model. WaComM++ simulates
// pollutant transport with a Lagrangian particle model: for every simulated
// hour, rank 0 distributes the particles over the MPI ranks (hierarchical
// master/worker parallelization), each rank moves its share, and — in the
// paper's modified version — the per-iteration particle results are written
// asynchronously, overlapping the next iteration's computation. The final
// result files are still written synchronously, and rank 0 reads the
// initial particle restart file at startup.
type WacommConfig struct {
	// Particles is the total particle count (paper: 2e6).
	Particles int64
	// Iterations is the number of simulated hours (paper: 50).
	Iterations int
	// BytesPerParticle sizes the I/O. Default 48.
	BytesPerParticle int64
	// PerParticleCost is the Lagrangian step per particle. Default
	// 27.5 µs, calibrated to ≈0.6 s iterations at 96 ranks (Fig. 8).
	PerParticleCost des.Duration
	// DistributionPerRank is rank 0's serial per-rank cost to scatter
	// particles and gather results each hour; it dominates large runs
	// (≈2.3 s iterations at 9216 ranks, Fig. 10). Default 225 µs.
	DistributionPerRank des.Duration
	// FixedIteration is the per-iteration fixed overhead (model setup,
	// OpenMP fork/join). Default 20 ms.
	FixedIteration des.Duration
	// HourlyRead makes rank 0 re-read new particles every ReadEvery
	// iterations ("in some cases, a new read operation is executed after
	// every hour"). 0 disables.
	ReadEvery int
	// FinalWriteFactor scales the synchronous result files written at the
	// end, relative to one iteration's data. Default 3 (several files).
	FinalWriteFactor float64
	// JitterFraction stretches each rank's compute by a uniform random
	// fraction. Default 0.05.
	JitterFraction float64
	// Hierarchical uses the two-level distribution the real WaComM++ is
	// designed around ("hierarchical and heterogeneous computation"): the
	// master scatters to one leader per node, and leaders scatter within
	// their node over the node communicator. The serial per-rank cost at
	// the master becomes a per-node cost, so large runs scale much
	// better. Default off (the flat master/worker model calibrated to the
	// paper's numbers).
	Hierarchical bool
}

// WithDefaults fills zero fields.
func (c WacommConfig) WithDefaults() WacommConfig {
	if c.Particles <= 0 {
		c.Particles = 2_000_000
	}
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.BytesPerParticle <= 0 {
		c.BytesPerParticle = 48
	}
	if c.PerParticleCost <= 0 {
		c.PerParticleCost = des.Duration(27500) // 27.5 µs
	}
	if c.DistributionPerRank <= 0 {
		c.DistributionPerRank = 225 * des.Microsecond
	}
	if c.FixedIteration <= 0 {
		c.FixedIteration = 20 * des.Millisecond
	}
	if c.FinalWriteFactor <= 0 {
		c.FinalWriteFactor = 3
	}
	if c.JitterFraction < 0 {
		c.JitterFraction = 0
	} else if c.JitterFraction == 0 {
		c.JitterFraction = 0.05
	}
	return c
}

// TotalBytes returns the total particle payload per iteration.
func (c WacommConfig) TotalBytes() int64 {
	d := c.WithDefaults()
	return d.Particles * d.BytesPerParticle
}

// BytesPerRank returns the per-rank write size per iteration for n ranks.
func (c WacommConfig) BytesPerRank(n int) int64 {
	b := c.TotalBytes() / int64(n)
	if b < 1 {
		b = 1
	}
	return b
}

// IterationDuration returns the modelled iteration length for n ranks,
// before jitter: particle work (parallel) + the distribution cost + fixed
// overhead. The flat model pays rank-0's serial per-rank cost; the
// hierarchical model pays one level of per-node cost at the master plus
// one level of per-rank cost inside the (ranksPerNode-wide) node.
func (c WacommConfig) IterationDuration(n int) des.Duration {
	return c.iterationDuration(n, 96)
}

func (c WacommConfig) iterationDuration(n, ranksPerNode int) des.Duration {
	d := c.WithDefaults()
	particleWork := des.Duration(d.Particles / int64(n) * int64(d.PerParticleCost))
	var distribution des.Duration
	if d.Hierarchical {
		nodes := (n + ranksPerNode - 1) / ranksPerNode
		within := n
		if within > ranksPerNode {
			within = ranksPerNode
		}
		distribution = des.Duration(int64(nodes+within) * int64(d.DistributionPerRank))
	} else {
		distribution = des.Duration(int64(n) * int64(d.DistributionPerRank))
	}
	return particleWork + distribution + d.FixedIteration
}

// WacommMain returns the per-rank main of the modified WaComM++: the
// iteration-i particle write overlaps the iteration-i+1 computation, with
// the matching wait right before the next write is issued.
func WacommMain(sys *mpiio.System, cfg WacommConfig) func(*mpi.Rank) {
	cfg = cfg.WithDefaults()
	return func(r *mpi.Rank) {
		n := r.World().Size()
		perRank := cfg.BytesPerRank(n)
		iter := cfg.iterationDuration(n, r.World().Config().RanksPerNode)
		var nodeComm *mpi.Comm
		if cfg.Hierarchical {
			nodeComm = r.NodeComm()
		}
		f := sys.Open(r, fmt.Sprintf("wacomm-%06d.nc", r.ID()))

		// Rank 0 reads the initial particle restart file synchronously.
		if r.ID() == 0 {
			f.ReadAt(0, cfg.TotalBytes())
		}
		r.Barrier() // everyone waits for the particle distribution

		var req *mpiio.Request
		for it := 0; it < cfg.Iterations; it++ {
			if cfg.ReadEvery > 0 && it > 0 && it%cfg.ReadEvery == 0 && r.ID() == 0 {
				// New particles arrive: rank 0 reads them in.
				f.ReadAt(0, cfg.TotalBytes()/8)
			}
			// Hourly synchronization: the master redistributes particles
			// (flat), or master → node leaders → node ranks (hierarchical).
			r.Barrier()
			if nodeComm != nil {
				nodeComm.Barrier(r)
			}

			// The Lagrangian transport step, with per-rank jitter.
			d := iter
			if cfg.JitterFraction > 0 {
				d += r.Jitter(des.Duration(float64(iter) * cfg.JitterFraction))
			}
			r.Compute(d)

			// Fence the previous iteration's write, then issue this
			// iteration's asynchronously: it overlaps the next hour.
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(int64(it)*perRank, perRank)
		}
		if req != nil {
			req.Wait()
		}

		// The last result files have no compute left to hide behind: they
		// are written synchronously, as in the original code.
		f.WriteAt(0, int64(float64(perRank)*cfg.FinalWriteFactor))
		r.Finalize()
	}
}
