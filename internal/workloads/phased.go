package workloads

import (
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// PhasedConfig describes the generic checkpointing kernel of the paper's
// Fig. 3: alternating compute phases with one asynchronous write each,
// fenced by the matching wait at the end of the next compute phase. It is
// the minimal application our approach applies to, used by the quickstart
// example and many tests.
type PhasedConfig struct {
	// Phases is the number of compute+write rounds.
	Phases int
	// BytesPerPhase is the checkpoint size per rank per phase.
	BytesPerPhase int64
	// Compute is the compute-phase duration.
	Compute des.Duration
	// JitterFraction stretches each phase by a uniform random fraction.
	JitterFraction float64
	// Collective, if true, issues a barrier between phases (collective
	// checkpointing: all ranks' I/O phases align).
	Collective bool
}

// WithDefaults fills zero fields.
func (c PhasedConfig) WithDefaults() PhasedConfig {
	if c.Phases <= 0 {
		c.Phases = 10
	}
	if c.BytesPerPhase <= 0 {
		c.BytesPerPhase = 64 << 20
	}
	if c.Compute <= 0 {
		c.Compute = des.Second
	}
	return c
}

// PhasedMain returns the per-rank main of the generic kernel.
func PhasedMain(sys *mpiio.System, cfg PhasedConfig) func(*mpi.Rank) {
	cfg = cfg.WithDefaults()
	return func(r *mpi.Rank) {
		f := sys.Open(r, fmt.Sprintf("ckpt-%06d.dat", r.ID()))
		var req *mpiio.Request
		for j := 0; j < cfg.Phases; j++ {
			if cfg.Collective {
				r.Barrier()
			}
			d := cfg.Compute
			if cfg.JitterFraction > 0 {
				d += r.Jitter(des.Duration(float64(d) * cfg.JitterFraction))
			}
			r.Compute(d)
			if req != nil {
				req.Wait()
			}
			req = f.IwriteAt(int64(j)*cfg.BytesPerPhase, cfg.BytesPerPhase)
		}
		if req != nil {
			req.Wait()
		}
		r.Finalize()
	}
}
