package workloads

import (
	"fmt"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// IorConfig models an IOR-style parallel I/O benchmark: every rank writes
// (and optionally reads back) Segments blocks of BlockSize bytes, in
// TransferSize pieces, with an optional compute delay between segments.
// IOR is the community-standard harness this library's file-system model
// can be sanity-checked against; it also demonstrates the collective
// (write_at_all) versus individual-file-pointer access modes the paper
// distinguishes for HACC-IO.
type IorConfig struct {
	// Segments per rank. Default 4.
	Segments int
	// BlockSize per segment per rank in bytes. Default 256 MiB.
	BlockSize int64
	// TransferSize per operation in bytes. Default 16 MiB.
	TransferSize int64
	// ReadBack re-reads everything after the write phase.
	ReadBack bool
	// Collective uses write_at_all/read_at_all instead of individual
	// file pointers.
	Collective bool
	// Async uses the non-blocking i-variants with a compute overlap per
	// transfer (individual mode only).
	Async bool
	// ComputeBetween is inserted between segments (and overlapped by the
	// asynchronous variant). Default 0.
	ComputeBetween des.Duration
	// Fsync issues a synchronizing barrier after each phase, like IOR's
	// fsync option. Default true.
	NoFsync bool
}

// WithDefaults fills zero fields.
func (c IorConfig) WithDefaults() IorConfig {
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256 << 20
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 16 << 20
	}
	if c.TransferSize > c.BlockSize {
		c.TransferSize = c.BlockSize
	}
	return c
}

// TotalBytesPerRank returns the data each rank writes (and reads when
// ReadBack is set).
func (c IorConfig) TotalBytesPerRank() int64 {
	d := c.WithDefaults()
	return int64(d.Segments) * d.BlockSize
}

// IorMain returns the per-rank main of the IOR-style benchmark.
func IorMain(sys *mpiio.System, cfg IorConfig) func(*mpi.Rank) {
	cfg = cfg.WithDefaults()
	return func(r *mpi.Rank) {
		f := sys.Open(r, fmt.Sprintf("ior-%06d.dat", r.ID()))
		transfersPerBlock := int(cfg.BlockSize / cfg.TransferSize)
		if transfersPerBlock < 1 {
			transfersPerBlock = 1
		}

		phase := func(write bool) {
			var pending *mpiio.Request
			for seg := 0; seg < cfg.Segments; seg++ {
				offset := int64(seg) * cfg.BlockSize
				for tr := 0; tr < transfersPerBlock; tr++ {
					off := offset + int64(tr)*cfg.TransferSize
					switch {
					case cfg.Collective && write:
						f.WriteAtAll(off, cfg.TransferSize)
					case cfg.Collective:
						f.ReadAtAll(off, cfg.TransferSize)
					case cfg.Async && write:
						if pending != nil {
							pending.Wait()
						}
						pending = f.IwriteAt(off, cfg.TransferSize)
						if cfg.ComputeBetween > 0 {
							r.Compute(cfg.ComputeBetween / des.Duration(transfersPerBlock))
						}
					case cfg.Async:
						if pending != nil {
							pending.Wait()
						}
						pending = f.IreadAt(off, cfg.TransferSize)
						if cfg.ComputeBetween > 0 {
							r.Compute(cfg.ComputeBetween / des.Duration(transfersPerBlock))
						}
					case write:
						f.WriteAt(off, cfg.TransferSize)
					default:
						f.ReadAt(off, cfg.TransferSize)
					}
				}
				if !cfg.Async && cfg.ComputeBetween > 0 {
					r.Compute(cfg.ComputeBetween)
				}
			}
			if pending != nil {
				pending.Wait()
			}
			if !cfg.NoFsync {
				r.Barrier()
			}
		}

		phase(true)
		if cfg.ReadBack {
			phase(false)
		}
		r.Finalize()
	}
}
