package workloads

import (
	"fmt"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
)

// CheckpointConfig models the canonical fault-tolerant HPC pattern behind
// the paper's motivation ("dominating write I/O operations (e.g.,
// checkpointing) occurring in bursts synchronously across several
// processes"): a long computation checkpoints every Interval; failures
// strike with exponential inter-arrival times and throw the job back to
// its last completed checkpoint.
//
// The configuration contrasts synchronous checkpoints (their cost lands
// directly on the critical path, so the Young/Daly optimum applies) with
// asynchronous ones (cost hidden behind the next segment — and, throttled
// to the required bandwidth, hidden from the file system too).
type CheckpointConfig struct {
	// ComputeTotal is the useful work to finish, per rank, in lockstep.
	ComputeTotal des.Duration
	// Interval is the checkpoint period. Use YoungInterval for the
	// classical optimum.
	Interval des.Duration
	// CheckpointBytes is the per-rank checkpoint size. Default 256 MiB.
	CheckpointBytes int64
	// Async overlaps each checkpoint write with the next segment.
	Async bool
	// MTBF is the job's mean time between failures (exponential); 0
	// disables failures.
	MTBF des.Duration
	// RestartRead re-reads the last checkpoint after a failure.
	RestartRead bool
	// RestartCost is the fixed re-initialization time after a failure.
	// Default 10 s when MTBF is set.
	RestartCost des.Duration
}

// WithDefaults fills zero fields.
func (c CheckpointConfig) WithDefaults() CheckpointConfig {
	if c.ComputeTotal <= 0 {
		c.ComputeTotal = 10 * des.Minute
	}
	if c.Interval <= 0 {
		c.Interval = des.Minute
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 256 << 20
	}
	if c.RestartCost <= 0 && c.MTBF > 0 {
		c.RestartCost = 10 * des.Second
	}
	return c
}

// YoungInterval returns Young's first-order optimal checkpoint interval
// √(2·MTBF·checkpointCost) — the sweet spot between checkpoint overhead
// (short intervals) and lost work (long intervals). Asynchronous
// checkpointing shrinks the *visible* checkpoint cost toward zero, pushing
// the optimal interval down and the failure waste with it.
func YoungInterval(mtbf, checkpointCost des.Duration) des.Duration {
	if mtbf <= 0 || checkpointCost <= 0 {
		return 0
	}
	return des.DurationOf(math.Sqrt(2 * mtbf.Seconds() * checkpointCost.Seconds()))
}

// ckptController coordinates failures across the ranks of one run: the
// failure decision for each segment attempt is sampled once (memoized on
// first access) so every rank observes the same fault schedule no matter
// the engine's interleaving.
type ckptController struct {
	w        *mpi.World
	mtbf     des.Duration
	failures int
	verdicts map[int]ckptVerdict
}

type ckptVerdict struct {
	fails bool
	waste float64 // fraction of the segment computed before the crash
}

func (c *ckptController) attempt(idx int, segTime des.Duration) ckptVerdict {
	if v, ok := c.verdicts[idx]; ok {
		return v
	}
	v := ckptVerdict{}
	if c.mtbf > 0 {
		rng := c.w.Engine().Rand()
		p := 1 - math.Exp(-segTime.Seconds()/c.mtbf.Seconds())
		if rng.Float64() < p {
			v = ckptVerdict{fails: true, waste: rng.Float64()}
		}
	}
	c.verdicts[idx] = v
	if v.fails {
		c.failures++
	}
	return v
}

// CheckpointMain returns the per-rank main of the checkpoint/restart
// pattern. Failures hit all ranks together (a node loss kills the whole
// MPI job); the failed segment's partial compute is wasted, the restart
// cost is paid, the last checkpoint is optionally re-read, and the segment
// is retried.
func CheckpointMain(sys *mpiio.System, cfg CheckpointConfig) func(*mpi.Rank) {
	main, _ := CheckpointMainWithProbe(sys, cfg)
	return main
}

// CheckpointProbe exposes the injected fault schedule of one
// CheckpointMainWithProbe run, for tests and reporting.
type CheckpointProbe struct{ ctl *ckptController }

// Failures returns the number of injected failures so far.
func (p CheckpointProbe) Failures() int { return p.ctl.failures }

// CheckpointMainWithProbe is CheckpointMain plus a probe for inspecting
// the injected fault schedule.
func CheckpointMainWithProbe(sys *mpiio.System, cfg CheckpointConfig) (func(*mpi.Rank), CheckpointProbe) {
	cfg = cfg.WithDefaults()
	ctl := &ckptController{
		w:        sys.World(),
		mtbf:     cfg.MTBF,
		verdicts: make(map[int]ckptVerdict),
	}
	main := checkpointMainWith(sys, cfg, ctl)
	return main, CheckpointProbe{ctl: ctl}
}

// checkpointMainWith is the shared body of CheckpointMain and
// CheckpointMainWithProbe.
func checkpointMainWith(sys *mpiio.System, cfg CheckpointConfig, ctl *ckptController) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		f := sys.Open(r, fmt.Sprintf("ckpt-%06d.dat", r.ID()))
		remaining := cfg.ComputeTotal
		var pending *mpiio.Request
		attempt := 0
		for remaining > 0 {
			r.Barrier()
			segTime := cfg.Interval
			if segTime > remaining {
				segTime = remaining
			}
			v := ctl.attempt(attempt, segTime)
			attempt++
			if v.fails {
				if pending != nil {
					pending.Wait()
					pending = nil
				}
				r.Compute(des.Duration(float64(segTime) * v.waste))
				r.Sleep(cfg.RestartCost)
				if cfg.RestartRead {
					f.ReadAt(0, cfg.CheckpointBytes)
				}
				continue
			}
			r.Compute(segTime)
			if pending != nil {
				pending.Wait()
				pending = nil
			}
			if cfg.Async {
				pending = f.IwriteAt(0, cfg.CheckpointBytes)
			} else {
				f.WriteAt(0, cfg.CheckpointBytes)
			}
			remaining -= segTime
		}
		if pending != nil {
			pending.Wait()
		}
		r.Finalize()
	}
}
