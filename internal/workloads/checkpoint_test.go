package workloads

import (
	"math"
	"testing"

	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
)

func TestYoungInterval(t *testing.T) {
	// MTBF 1 h, checkpoint cost 50 s: √(2·3600·50) = 600 s.
	got := YoungInterval(des.Hour, 50*des.Second)
	if math.Abs(got.Seconds()-600) > 1e-6 {
		t.Fatalf("young = %v, want 600s", got)
	}
	if YoungInterval(0, des.Second) != 0 || YoungInterval(des.Hour, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCheckpointNoFailures(t *testing.T) {
	s := newStack(t, 4, tmio.StrategyConfig{})
	cfg := CheckpointConfig{
		ComputeTotal:    10 * des.Second,
		Interval:        2 * des.Second,
		CheckpointBytes: 100 << 20,
	}
	main, probe := CheckpointMainWithProbe(s.sys, cfg)
	if err := s.w.Run(main); err != nil {
		t.Fatal(err)
	}
	if probe.Failures() != 0 {
		t.Fatalf("failures = %d with MTBF=0", probe.Failures())
	}
	rep := s.tr.Report()
	// 5 segments → 5 sync checkpoints per rank.
	if rep.SyncOps != 4*5 {
		t.Fatalf("sync ops = %d", rep.SyncOps)
	}
	// Runtime = compute + visible checkpoint time.
	if rep.AppTime.Seconds() < 10 {
		t.Fatalf("runtime %v below compute total", rep.AppTime)
	}
}

func TestCheckpointAsyncHidesCost(t *testing.T) {
	// A slow shared file system (2 GB/s) makes synchronous checkpoints
	// expensive (4 ranks × 512 MiB ≈ 1.07 s each on the critical path)
	// while the throttled asynchronous variant stays under-committed
	// (aggregate demand ≈ 1.3 GB/s) and hides everything but the final
	// checkpoint.
	run := func(async bool) des.Duration {
		e := des.NewEngine(7)
		w := mpi.NewWorld(e, mpi.Config{Size: 4})
		fs := pfs.New(e, pfs.Config{WriteCapacity: 2e9, ReadCapacity: 2e9})
		sys := mpiio.NewSystem(w, fs, adio.Config{})
		tr := tmio.Attach(sys, tmio.Config{
			Strategy:        tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.2},
			DisableOverhead: true,
		})
		cfg := CheckpointConfig{
			ComputeTotal:    20 * des.Second,
			Interval:        2 * des.Second,
			CheckpointBytes: 512 << 20,
			Async:           async,
		}
		if err := w.Run(CheckpointMain(sys, cfg)); err != nil {
			t.Fatal(err)
		}
		return tr.Report().AppTime
	}
	sync := run(false)
	async := run(true)
	if sync.Seconds() < 28 {
		t.Fatalf("sync run = %v, expected ≈30s of visible checkpointing", sync)
	}
	if async >= sync-des.Duration(5*des.Second) {
		t.Fatalf("async checkpointing not clearly faster: %v vs %v", async, sync)
	}
}

func TestCheckpointFailuresInjected(t *testing.T) {
	s := newStack(t, 2, tmio.StrategyConfig{})
	cfg := CheckpointConfig{
		ComputeTotal:    30 * des.Second,
		Interval:        3 * des.Second,
		CheckpointBytes: 1 << 20,
		MTBF:            10 * des.Second, // aggressive: failures certain
		RestartRead:     true,
	}
	main, probe := CheckpointMainWithProbe(s.sys, cfg)
	if err := s.w.Run(main); err != nil {
		t.Fatal(err)
	}
	if probe.Failures() == 0 {
		t.Fatal("no failures despite MTBF ≪ runtime")
	}
	rep := s.tr.Report()
	// Restart reads occurred.
	if rep.TotalBytes[pfs.Read] == 0 {
		t.Fatal("no restart reads")
	}
	// Runtime exceeds the failure-free bound by the wasted work.
	if rep.AppTime.Seconds() <= 30 {
		t.Fatalf("runtime %v not extended by failures", rep.AppTime)
	}
}

func TestCheckpointFailuresDeterministic(t *testing.T) {
	run := func() (int, des.Duration) {
		s := newStack(t, 2, tmio.StrategyConfig{})
		cfg := CheckpointConfig{
			ComputeTotal: 20 * des.Second,
			Interval:     2 * des.Second,
			MTBF:         8 * des.Second,
		}
		main, probe := CheckpointMainWithProbe(s.sys, cfg)
		if err := s.w.Run(main); err != nil {
			t.Fatal(err)
		}
		return probe.Failures(), s.tr.Report().AppTime
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("non-deterministic failures: %d/%v vs %d/%v", f1, t1, f2, t2)
	}
}

func TestCheckpointDefaults(t *testing.T) {
	cfg := CheckpointConfig{MTBF: des.Hour}.WithDefaults()
	if cfg.ComputeTotal != 10*des.Minute || cfg.Interval != des.Minute {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.RestartCost != 10*des.Second {
		t.Fatalf("restart cost: %v", cfg.RestartCost)
	}
	noFail := CheckpointConfig{}.WithDefaults()
	if noFail.RestartCost != 0 {
		t.Fatal("restart cost without MTBF")
	}
}
