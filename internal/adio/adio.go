// Package adio models ROMIO's ADIO layer as modified by the paper: every
// MPI-IO read and write is redirected through a per-rank I/O agent process
// (the "I/O thread" of Sec. V) that executes the operation synchronously
// against the file system, notifies completion through a generalized
// request, and enforces a user-settable bandwidth limit.
//
// The limiter follows the paper's algorithm verbatim:
//
//  1. A request is divided into sub-requests of a predefined size; a
//     request smaller than that size is executed directly.
//  2. For every sub-request the agent computes the required time from the
//     limit: Δt = size / limit.
//  3. Each sub-request runs as a blocking transfer. If it finished faster
//     than required, the agent sleeps the remainder (Case A); if slower,
//     the overrun is accumulated and used to shorten later sleeps (Case B).
package adio

import (
	"fmt"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

// Host is the compute process an agent serves: the agent charges it
// interference penalties for background I/O activity.
type Host interface {
	// AddInterference charges seconds of compute slowdown.
	AddInterference(seconds float64)
}

// Config parameterizes an I/O agent.
type Config struct {
	// SubRequestSize is the throttling granularity in bytes. Defaults to
	// 8 MiB. Requests at or below this size are executed in one piece.
	SubRequestSize int64
	// MinLimit is the lowest admissible bandwidth limit in bytes/s;
	// SetLimit clamps below it so a mismeasured required bandwidth can
	// never stall the application outright. Defaults to 512 B/s — low
	// enough not to interfere with the tiny per-rank request sizes of
	// large strong-scaled runs (a 9216-rank WaComM++ writes ~10 KiB per
	// rank per hour).
	MinLimit float64
	// Interference is the I/O-thread/compute interference model.
	Interference mpi.InterferenceModel
	// RanksPerNode scales a rank's transfer rate to the node-aggregate
	// rate the interference model expects. Defaults to 96.
	RanksPerNode int
	// FlowWeight is the fair-share weight of this agent's transfers on
	// the file system. Defaults to 1.
	FlowWeight float64
	// Tag identifies this agent's flows to file-system observers.
	Tag pfs.Tag
	// CarryDeficit keeps the Case-B overrun accumulator across requests
	// instead of resetting it per request (ablation knob).
	CarryDeficit bool

	// HiccupProb and HiccupMean model the resource competition of unpaced
	// background I/O threads (Tseng et al. [33]; the paper observes the
	// effect as "less competition for resources at the beginning of the
	// phases" when throttling). Each request executed *without pacing* —
	// no limit, or a limit the file system couldn't outrun, so the agent
	// never slept — triggers, with probability HiccupProb, a scheduling
	// hiccup that charges the host an Exp(HiccupMean)-distributed compute
	// delay. Paced agents spend their time in timed sleeps and yield the
	// core, so they are exempt. At scale, per-iteration barriers amplify
	// the rare per-rank hiccups into a measurable slowdown of the
	// unthrottled run. Defaults: 0 (disabled) / 500 ms.
	HiccupProb float64
	HiccupMean des.Duration

	// BurstBuffer, when non-nil, interposes a node-local buffer tier in
	// front of the file system for writes (the paper's future-work
	// setting): writes complete at buffer speed and a background drainer
	// trickles the data to the PFS at the configured DrainRate, which
	// becomes the agent's write-bandwidth footprint on the shared system.
	// The bandwidth limit does not additionally pace buffered writes.
	// Reads bypass the buffer.
	BurstBuffer *pfs.BurstBufferConfig

	// RetryMax bounds the consecutive retries of one failing sub-request
	// when a fault model reports transient I/O errors; after RetryMax
	// failed retries the request is abandoned (Stats.Failed) and the
	// exhaustion counted. Defaults to 4.
	RetryMax int
	// RetryBackoff is the base of the exponential retry backoff on the
	// simulated clock: the n-th consecutive retry sleeps
	// RetryBackoff × 2^(n-1), capped at RetryBackoffMax. Defaults to
	// 10 ms / 1 s.
	RetryBackoff    des.Duration
	RetryBackoffMax des.Duration

	// SubmitLatencyPerFlow and QueueLatencyPerFlow model I/O-server
	// queuing under burst storms. When thousands of ranks hit the file
	// system at once, posting a request stalls the *caller* briefly
	// (SubmitLatencyPerFlow × concurrent flows, applied by the MPI-IO
	// layer on the application thread) and the request waits in the
	// server queue before its first byte moves (QueueLatencyPerFlow ×
	// concurrent flows, applied inside the agent, hidden from the
	// application). Throttled traffic keeps concurrency low and pays
	// almost nothing — this is the "pollution by short accesses" cost the
	// paper's approach avoids. Both default to 0 (disabled). Actual
	// delays are jittered by a factor of 0.5 + Exp(1).
	SubmitLatencyPerFlow des.Duration
	QueueLatencyPerFlow  des.Duration
}

// StormLatency samples a queuing delay for one operation: perFlow scaled
// by the number of concurrent flows, jittered by 0.5 + Exp(1).
func StormLatency(e *des.Engine, perFlow des.Duration, flows int) des.Duration {
	if perFlow <= 0 || flows <= 0 {
		return 0
	}
	factor := 0.5 + e.Rand().ExpFloat64()
	return des.DurationOf(perFlow.Seconds() * float64(flows) * factor)
}

func (c *Config) applyDefaults() {
	if c.SubRequestSize <= 0 {
		c.SubRequestSize = 8 << 20
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 512
	}
	if c.HiccupMean <= 0 {
		c.HiccupMean = 500 * des.Millisecond
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 96
	}
	if c.FlowWeight <= 0 {
		c.FlowWeight = 1
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * des.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = des.Second
	}
}

// FaultModel is the agent's view of an active fault scenario
// (internal/faults.Injector implements it). All methods answer for the
// current virtual instant; the agent consults them per sub-request, so
// windows opening or closing mid-request take effect on the next chunk.
type FaultModel interface {
	// QueueFactor scales the storm-queue latency of the class (>= 1).
	QueueFactor(class pfs.Class) float64
	// NodeSlowdown scales one node's transfer durations (>= 1).
	NodeSlowdown(node int) float64
	// ErrorProb is the transient-failure probability per sub-request.
	ErrorProb(class pfs.Class) float64
}

// Segment is a half-open interval of virtual time during which the agent
// was actively moving bytes (throttle sleeps excluded).
type Segment struct {
	Start, End des.Time
}

// Duration returns the segment length.
func (s Segment) Duration() des.Duration { return s.End.Sub(s.Start) }

// RequestStats describes one executed I/O request; the tracing library
// reads it after completion to compute throughput and overlap metrics.
type RequestStats struct {
	Class     pfs.Class
	Async     bool
	Bytes     int64
	Submitted des.Time  // when the application issued the operation
	Start     des.Time  // when the agent began executing it
	End       des.Time  // when the last byte (and last sleep) finished
	Segments  []Segment // active transfer intervals
	Limit     float64   // the limit in force (Unlimited if none)
	SleptFor  des.Duration

	// Queued is the server-side storm-queue wait before the first byte
	// moved. It is also folded into the first segment (the queue time
	// lengthens the measured throughput window), so Δt° reconstructed
	// from the segments includes it.
	Queued des.Duration
	// Retries counts failed sub-request attempts that were retried under
	// an active fault model; BackoffSlept is the total retry backoff
	// slept on the simulated clock. Failed marks a request abandoned
	// after RetryMax consecutive failures — its remaining bytes were
	// never transferred.
	Retries      int
	BackoffSlept des.Duration
	Failed       bool
}

// ActiveTransfer returns the summed duration of the active segments.
func (s *RequestStats) ActiveTransfer() des.Duration {
	var d des.Duration
	for _, seg := range s.Segments {
		d += seg.Duration()
	}
	return d
}

// Request is the handle the MPI-IO layer receives for a submitted
// operation. Completion is signalled in virtual time; Stats must only be
// read after Done reports true.
type Request struct {
	done  *des.Completion
	Stats RequestStats
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done.Done() }

// CompletedAt returns the completion time (zero while pending).
func (r *Request) CompletedAt() des.Time { return r.done.At() }

// Wait parks proc until the request completes.
func (r *Request) Wait(proc *des.Proc) { r.done.Wait(proc) }

// Agent is the per-rank I/O thread.
type Agent struct {
	e      *des.Engine
	fs     *pfs.PFS
	host   Host
	cfg    Config
	queue  *des.Mailbox[*Request]
	proc   *des.Proc
	bb     *pfs.BurstBuffer
	limit  [2]float64 // per pfs.Class; both set by SetLimit
	closed bool

	// carriedDeficit persists the Case-B accumulator across requests when
	// CarryDeficit is set.
	carriedDeficit float64

	// faults, when non-nil, is the active fault scenario.
	faults FaultModel

	// Totals for introspection and tests.
	totalBytes     [2]int64
	totalSlept     des.Duration
	requestsDone   int
	hiccups        int
	retries        int
	retryExhausted int
}

// NewAgent creates and starts an I/O agent serving host on fs.
func NewAgent(e *des.Engine, fs *pfs.PFS, host Host, cfg Config) *Agent {
	cfg.applyDefaults()
	a := &Agent{
		e:     e,
		fs:    fs,
		host:  host,
		cfg:   cfg,
		queue: des.NewMailbox[*Request](e),
		limit: [2]float64{pfs.Unlimited, pfs.Unlimited},
	}
	if cfg.BurstBuffer != nil {
		a.bb = pfs.NewBurstBuffer(e, fs, *cfg.BurstBuffer, cfg.FlowWeight, cfg.Tag)
	}
	a.proc = e.Spawn(fmt.Sprintf("ioagent-j%dr%d", cfg.Tag.Job, cfg.Tag.Rank), a.serve)
	return a
}

// BurstBuffer returns the agent's buffer tier, or nil.
func (a *Agent) BurstBuffer() *pfs.BurstBuffer { return a.bb }

// SetFaults installs (or removes, with nil) the fault model the agent
// consults per sub-request.
func (a *Agent) SetFaults(m FaultModel) { a.faults = m }

// Limit returns the write-class bandwidth limit currently in force
// (Unlimited if none). Reads may carry a different limit; see ClassLimit.
func (a *Agent) Limit() float64 { return a.limit[pfs.Write] }

// ClassLimit returns the limit in force for one operation class.
func (a *Agent) ClassLimit(class pfs.Class) float64 { return a.limit[class] }

// SetLimit installs a bandwidth limit in bytes/s for both classes,
// clamped to MinLimit. Pass pfs.Unlimited to remove the limit. This is
// the user-level control the paper exposes; TMIO calls it after every
// wait with the strategy's next-phase value.
func (a *Agent) SetLimit(limit float64) {
	a.SetClassLimit(pfs.Write, limit)
	a.SetClassLimit(pfs.Read, limit)
}

// SetClassLimit installs a limit for one class only. Applications whose
// read and write phases have very different requirements (the modified
// HACC-IO alternates them every half-loop) avoid limiter oscillation by
// keeping the classes independent; TMIO's PerClassLimits option uses this.
func (a *Agent) SetClassLimit(class pfs.Class, limit float64) {
	if math.IsInf(limit, 1) {
		a.limit[class] = pfs.Unlimited
		return
	}
	if limit < a.cfg.MinLimit {
		limit = a.cfg.MinLimit
	}
	a.limit[class] = limit
}

// Submit enqueues an operation and returns its request handle immediately.
// The agent starts executing it as soon as it is idle (our implementation,
// like the paper's, begins the I/O right after submission when the queue
// is empty). Only asynchronous operations are paced by the bandwidth
// limit: the limit exists to stretch hidden I/O across the compute phase,
// and throttling a blocking operation would only prolong visible I/O.
func (a *Agent) Submit(class pfs.Class, bytes int64, async bool) *Request {
	if a.closed {
		panic("adio: submit on closed agent")
	}
	if bytes < 0 {
		panic("adio: negative request size")
	}
	req := &Request{done: des.NewCompletion(a.e)}
	req.Stats.Class = class
	req.Stats.Async = async
	req.Stats.Bytes = bytes
	req.Stats.Submitted = a.e.Now()
	a.queue.Put(req)
	return req
}

// Close shuts the agent down after it drains its queue. Further Submits
// panic.
func (a *Agent) Close() {
	if a.closed {
		return
	}
	a.closed = true
	a.queue.Put(nil) // poison pill
	if a.bb != nil {
		a.bb.Close()
	}
}

// TotalBytes returns the bytes executed for the class so far.
func (a *Agent) TotalBytes(class pfs.Class) int64 { return a.totalBytes[class] }

// TotalSlept returns the cumulative throttle sleep time.
func (a *Agent) TotalSlept() des.Duration { return a.totalSlept }

// RequestsDone returns the number of completed requests.
func (a *Agent) RequestsDone() int { return a.requestsDone }

// Hiccups returns how many scheduling hiccups this agent has charged.
func (a *Agent) Hiccups() int { return a.hiccups }

// Retries returns how many failed sub-request attempts this agent has
// retried under a fault model.
func (a *Agent) Retries() int { return a.retries }

// RetryExhausted returns how many requests this agent abandoned after
// RetryMax consecutive failures.
func (a *Agent) RetryExhausted() int { return a.retryExhausted }

// QueueLen returns the number of requests waiting behind the current one.
func (a *Agent) QueueLen() int { return a.queue.Len() }

// serve is the agent main loop: pop a request, execute it throttled,
// complete its generalized request.
func (a *Agent) serve(p *des.Proc) {
	for {
		req := a.queue.Get(p)
		if req == nil {
			return
		}
		a.execute(p, req)
		req.done.Complete()
		a.requestsDone++
	}
}

// execute runs one request against the file system under the current
// limit, implementing the sub-request loop of Sec. V.
func (a *Agent) execute(p *des.Proc, req *Request) {
	req.Stats.Start = p.Now()
	req.Stats.Limit = a.limit[req.Stats.Class]
	if !req.Stats.Async {
		req.Stats.Limit = pfs.Unlimited
	}

	// Server-side queuing under storms: the request waits before its
	// first byte moves. Hidden from the application (it lands inside the
	// operation window), but it lengthens the measured throughput window.
	// The queuing time counts toward the first sub-request's actual
	// execution time — the paper's thread compares wall time, so server
	// stalls eat into the sleep budget rather than adding to it. A
	// server-stall fault window multiplies the wait.
	var queued des.Duration
	if lat := StormLatency(a.e, a.cfg.QueueLatencyPerFlow,
		a.fs.RecentOps(req.Stats.Class)); lat > 0 {
		if a.faults != nil {
			if f := a.faults.QueueFactor(req.Stats.Class); f > 1 {
				lat = des.DurationOf(lat.Seconds() * f)
			}
		}
		p.Sleep(lat)
		queued = lat
	}
	req.Stats.Queued = queued

	// Buffered writes land in the burst-buffer tier at absorb speed; the
	// buffer's drainer shapes the traffic to the file system. The
	// buffered path is never paced (the limit shapes PFS traffic, which
	// buffered writes reach only through the drainer), so the stats
	// report Unlimited — limiter feedback must not treat a buffered
	// phase as throttled. Interference and the hiccup tail are charged
	// exactly like the direct path's.
	if a.bb != nil && req.Stats.Class == pfs.Write {
		req.Stats.Limit = pfs.Unlimited
		start := p.Now()
		a.bb.Write(p, req.Stats.Bytes)
		end := p.Now()
		req.Stats.Segments = append(req.Stats.Segments, Segment{Start: start.Add(-queued), End: end})
		a.chargeInterference(end.Sub(start).Seconds(), req.Stats.Bytes)
		a.totalBytes[pfs.Write] += req.Stats.Bytes
		req.Stats.End = end
		a.maybeHiccup(req)
		return
	}

	remaining := req.Stats.Bytes
	deficit := 0.0 // Case-B overrun in seconds
	if a.cfg.CarryDeficit {
		deficit = a.carriedDeficit
	}
	failures := 0 // consecutive failed attempts on the current chunk
	for remaining > 0 {
		// The limit is re-read per sub-request: a limit installed while a
		// large request is in flight paces its remaining chunks, matching
		// the paper's thread, which consults the limit for every
		// sub-request it executes.
		limit := a.limit[req.Stats.Class]
		limited := req.Stats.Async && !math.IsInf(limit, 1)
		chunk := remaining
		if limited && chunk > a.cfg.SubRequestSize {
			chunk = a.cfg.SubRequestSize
		}
		// Step 2: required time from the limit and the sub-request size.
		required := 0.0
		if limited {
			required = float64(chunk) / limit
		}
		// Step 3: the sub-request itself is a blocking transfer at full
		// speed; throttling happens through the duty cycle.
		start, end := a.fs.Transfer(p, req.Stats.Class, chunk, a.cfg.FlowWeight, pfs.Unlimited, a.cfg.Tag)
		if a.faults != nil {
			// A straggler node moves its bytes at channel speed but hands
			// them over late: the sub-request stretches by the slowdown.
			if slow := a.faults.NodeSlowdown(a.cfg.Tag.Node); slow > 1 {
				p.Sleep(des.DurationOf(end.Sub(start).Seconds() * (slow - 1)))
				end = p.Now()
			}
		}
		// The first segment extends back over the queue wait, so segment-
		// reconstructed Δt° includes it; subsequent chunks start clean.
		segStart := start.Add(-queued)
		queued = 0
		req.Stats.Segments = append(req.Stats.Segments, Segment{Start: segStart, End: end})
		actual := end.Sub(segStart).Seconds()
		a.chargeInterference(end.Sub(start).Seconds(), chunk)

		if a.faults != nil {
			if prob := a.faults.ErrorProb(req.Stats.Class); prob > 0 &&
				a.e.Rand().Float64() < prob {
				// Transient I/O error: the attempt burned wire time but
				// delivered nothing. The wasted time banks into the
				// deficit (it was real wall time the pacing must absorb);
				// the chunk is retried after an exponential backoff on
				// the simulated clock, bounded by RetryMax.
				if limited {
					deficit += actual
				}
				failures++
				if failures > a.cfg.RetryMax {
					a.retryExhausted++
					req.Stats.Failed = true
					break
				}
				req.Stats.Retries++
				a.retries++
				d := retryBackoff(a.cfg, failures)
				p.Sleep(d)
				req.Stats.BackoffSlept += d
				continue
			}
		}
		failures = 0
		remaining -= chunk

		if !limited {
			continue
		}
		if actual < required {
			// Case A: faster than the limit allows; sleep the remainder,
			// shortened by any accumulated overrun.
			sleep := required - actual
			if deficit > 0 {
				use := math.Min(deficit, sleep)
				deficit -= use
				sleep -= use
			}
			if sleep > 0 {
				// The sleep applies to the final sub-request as well: the
				// operation is not reported complete before its required
				// time elapses, which is what makes the measured
				// throughput track the limit (paper Fig. 9).
				d := des.DurationOf(sleep)
				p.Sleep(d)
				req.Stats.SleptFor += d
				a.totalSlept += d
			}
		} else {
			// Case B: slower than required; bank the difference.
			deficit += actual - required
		}
	}
	if a.cfg.CarryDeficit {
		a.carriedDeficit = deficit
	}
	// Only delivered bytes count: a request abandoned on retry exhaustion
	// left its remaining bytes untransferred.
	a.totalBytes[req.Stats.Class] += req.Stats.Bytes - remaining
	req.Stats.End = p.Now()
	a.maybeHiccup(req)
}

// maybeHiccup models the scheduling cost of an unpaced request: the agent
// never yielded into a timed sleep, so it competed for the host's cores at
// full tilt; occasionally that costs the host a scheduling hiccup.
func (a *Agent) maybeHiccup(req *Request) {
	if a.host == nil || a.cfg.HiccupProb <= 0 || !req.Stats.Async ||
		req.Stats.SleptFor != 0 || req.Stats.Bytes <= 0 {
		return
	}
	rng := a.e.Rand()
	if rng.Float64() < a.cfg.HiccupProb {
		delay := rng.ExpFloat64() * a.cfg.HiccupMean.Seconds()
		a.host.AddInterference(delay)
		a.hiccups++
	}
}

// retryBackoff returns the sleep before the failures-th consecutive retry:
// RetryBackoff × 2^(failures−1), capped at RetryBackoffMax.
func retryBackoff(cfg Config, failures int) des.Duration {
	if failures > 20 {
		return cfg.RetryBackoffMax
	}
	d := cfg.RetryBackoff << (failures - 1)
	if d <= 0 || d > cfg.RetryBackoffMax {
		d = cfg.RetryBackoffMax
	}
	return d
}

// chargeInterference converts one transfer's duration and rate into a
// compute penalty for the host.
func (a *Agent) chargeInterference(durationSeconds float64, bytes int64) {
	if a.host == nil || durationSeconds <= 0 {
		return
	}
	rate := float64(bytes) / durationSeconds
	nodeRate := rate * float64(a.cfg.RanksPerNode)
	if pen := a.cfg.Interference.Penalty(durationSeconds, nodeRate); pen > 0 {
		a.host.AddInterference(pen)
	}
}
