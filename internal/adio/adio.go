// Package adio models ROMIO's ADIO layer as modified by the paper: every
// MPI-IO read and write is redirected through a per-rank I/O agent process
// (the "I/O thread" of Sec. V) that executes the operation synchronously
// against the file system, notifies completion through a generalized
// request, and enforces a user-settable bandwidth limit.
//
// The limiter follows the paper's algorithm verbatim:
//
//  1. A request is divided into sub-requests of a predefined size; a
//     request smaller than that size is executed directly.
//  2. For every sub-request the agent computes the required time from the
//     limit: Δt = size / limit.
//  3. Each sub-request runs as a blocking transfer. If it finished faster
//     than required, the agent sleeps the remainder (Case A); if slower,
//     the overrun is accumulated and used to shorten later sleeps (Case B).
package adio

import (
	"fmt"
	"math"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

// Host is the compute process an agent serves: the agent charges it
// interference penalties for background I/O activity.
type Host interface {
	// AddInterference charges seconds of compute slowdown.
	AddInterference(seconds float64)
}

// Config parameterizes an I/O agent.
type Config struct {
	// SubRequestSize is the throttling granularity in bytes. Defaults to
	// 8 MiB. Requests at or below this size are executed in one piece.
	SubRequestSize int64
	// MinLimit is the lowest admissible bandwidth limit in bytes/s;
	// SetLimit clamps below it so a mismeasured required bandwidth can
	// never stall the application outright. Defaults to 512 B/s — low
	// enough not to interfere with the tiny per-rank request sizes of
	// large strong-scaled runs (a 9216-rank WaComM++ writes ~10 KiB per
	// rank per hour).
	MinLimit float64
	// Interference is the I/O-thread/compute interference model.
	Interference mpi.InterferenceModel
	// RanksPerNode scales a rank's transfer rate to the node-aggregate
	// rate the interference model expects. Defaults to 96.
	RanksPerNode int
	// FlowWeight is the fair-share weight of this agent's transfers on
	// the file system. Defaults to 1.
	FlowWeight float64
	// Tag identifies this agent's flows to file-system observers.
	Tag pfs.Tag
	// CarryDeficit keeps the Case-B overrun accumulator across requests
	// instead of resetting it per request (ablation knob).
	CarryDeficit bool

	// HiccupProb and HiccupMean model the resource competition of unpaced
	// background I/O threads (Tseng et al. [33]; the paper observes the
	// effect as "less competition for resources at the beginning of the
	// phases" when throttling). Each request executed *without pacing* —
	// no limit, or a limit the file system couldn't outrun, so the agent
	// never slept — triggers, with probability HiccupProb, a scheduling
	// hiccup that charges the host an Exp(HiccupMean)-distributed compute
	// delay. Paced agents spend their time in timed sleeps and yield the
	// core, so they are exempt. At scale, per-iteration barriers amplify
	// the rare per-rank hiccups into a measurable slowdown of the
	// unthrottled run. Defaults: 0 (disabled) / 500 ms.
	HiccupProb float64
	HiccupMean des.Duration

	// BurstBuffer, when non-nil, interposes a node-local buffer tier in
	// front of the file system for writes (the paper's future-work
	// setting): writes complete at buffer speed and a background drainer
	// trickles the data to the PFS at the configured DrainRate, which
	// becomes the agent's write-bandwidth footprint on the shared system.
	// The bandwidth limit does not additionally pace buffered writes.
	// Reads bypass the buffer.
	BurstBuffer *pfs.BurstBufferConfig

	// SubmitLatencyPerFlow and QueueLatencyPerFlow model I/O-server
	// queuing under burst storms. When thousands of ranks hit the file
	// system at once, posting a request stalls the *caller* briefly
	// (SubmitLatencyPerFlow × concurrent flows, applied by the MPI-IO
	// layer on the application thread) and the request waits in the
	// server queue before its first byte moves (QueueLatencyPerFlow ×
	// concurrent flows, applied inside the agent, hidden from the
	// application). Throttled traffic keeps concurrency low and pays
	// almost nothing — this is the "pollution by short accesses" cost the
	// paper's approach avoids. Both default to 0 (disabled). Actual
	// delays are jittered by a factor of 0.5 + Exp(1).
	SubmitLatencyPerFlow des.Duration
	QueueLatencyPerFlow  des.Duration
}

// StormLatency samples a queuing delay for one operation: perFlow scaled
// by the number of concurrent flows, jittered by 0.5 + Exp(1).
func StormLatency(e *des.Engine, perFlow des.Duration, flows int) des.Duration {
	if perFlow <= 0 || flows <= 0 {
		return 0
	}
	factor := 0.5 + e.Rand().ExpFloat64()
	return des.DurationOf(perFlow.Seconds() * float64(flows) * factor)
}

func (c *Config) applyDefaults() {
	if c.SubRequestSize <= 0 {
		c.SubRequestSize = 8 << 20
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 512
	}
	if c.HiccupMean <= 0 {
		c.HiccupMean = 500 * des.Millisecond
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 96
	}
	if c.FlowWeight <= 0 {
		c.FlowWeight = 1
	}
}

// Segment is a half-open interval of virtual time during which the agent
// was actively moving bytes (throttle sleeps excluded).
type Segment struct {
	Start, End des.Time
}

// Duration returns the segment length.
func (s Segment) Duration() des.Duration { return s.End.Sub(s.Start) }

// RequestStats describes one executed I/O request; the tracing library
// reads it after completion to compute throughput and overlap metrics.
type RequestStats struct {
	Class     pfs.Class
	Async     bool
	Bytes     int64
	Submitted des.Time  // when the application issued the operation
	Start     des.Time  // when the agent began executing it
	End       des.Time  // when the last byte (and last sleep) finished
	Segments  []Segment // active transfer intervals
	Limit     float64   // the limit in force (Unlimited if none)
	SleptFor  des.Duration
}

// ActiveTransfer returns the summed duration of the active segments.
func (s *RequestStats) ActiveTransfer() des.Duration {
	var d des.Duration
	for _, seg := range s.Segments {
		d += seg.Duration()
	}
	return d
}

// Request is the handle the MPI-IO layer receives for a submitted
// operation. Completion is signalled in virtual time; Stats must only be
// read after Done reports true.
type Request struct {
	done  *des.Completion
	Stats RequestStats
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done.Done() }

// CompletedAt returns the completion time (zero while pending).
func (r *Request) CompletedAt() des.Time { return r.done.At() }

// Wait parks proc until the request completes.
func (r *Request) Wait(proc *des.Proc) { r.done.Wait(proc) }

// Agent is the per-rank I/O thread.
type Agent struct {
	e      *des.Engine
	fs     *pfs.PFS
	host   Host
	cfg    Config
	queue  *des.Mailbox[*Request]
	proc   *des.Proc
	bb     *pfs.BurstBuffer
	limit  [2]float64 // per pfs.Class; both set by SetLimit
	closed bool

	// carriedDeficit persists the Case-B accumulator across requests when
	// CarryDeficit is set.
	carriedDeficit float64

	// Totals for introspection and tests.
	totalBytes   [2]int64
	totalSlept   des.Duration
	requestsDone int
	hiccups      int
}

// NewAgent creates and starts an I/O agent serving host on fs.
func NewAgent(e *des.Engine, fs *pfs.PFS, host Host, cfg Config) *Agent {
	cfg.applyDefaults()
	a := &Agent{
		e:     e,
		fs:    fs,
		host:  host,
		cfg:   cfg,
		queue: des.NewMailbox[*Request](e),
		limit: [2]float64{pfs.Unlimited, pfs.Unlimited},
	}
	if cfg.BurstBuffer != nil {
		a.bb = pfs.NewBurstBuffer(e, fs, *cfg.BurstBuffer, cfg.FlowWeight, cfg.Tag)
	}
	a.proc = e.Spawn(fmt.Sprintf("ioagent-j%dr%d", cfg.Tag.Job, cfg.Tag.Rank), a.serve)
	return a
}

// BurstBuffer returns the agent's buffer tier, or nil.
func (a *Agent) BurstBuffer() *pfs.BurstBuffer { return a.bb }

// Limit returns the write-class bandwidth limit currently in force
// (Unlimited if none). Reads may carry a different limit; see ClassLimit.
func (a *Agent) Limit() float64 { return a.limit[pfs.Write] }

// ClassLimit returns the limit in force for one operation class.
func (a *Agent) ClassLimit(class pfs.Class) float64 { return a.limit[class] }

// SetLimit installs a bandwidth limit in bytes/s for both classes,
// clamped to MinLimit. Pass pfs.Unlimited to remove the limit. This is
// the user-level control the paper exposes; TMIO calls it after every
// wait with the strategy's next-phase value.
func (a *Agent) SetLimit(limit float64) {
	a.SetClassLimit(pfs.Write, limit)
	a.SetClassLimit(pfs.Read, limit)
}

// SetClassLimit installs a limit for one class only. Applications whose
// read and write phases have very different requirements (the modified
// HACC-IO alternates them every half-loop) avoid limiter oscillation by
// keeping the classes independent; TMIO's PerClassLimits option uses this.
func (a *Agent) SetClassLimit(class pfs.Class, limit float64) {
	if math.IsInf(limit, 1) {
		a.limit[class] = pfs.Unlimited
		return
	}
	if limit < a.cfg.MinLimit {
		limit = a.cfg.MinLimit
	}
	a.limit[class] = limit
}

// Submit enqueues an operation and returns its request handle immediately.
// The agent starts executing it as soon as it is idle (our implementation,
// like the paper's, begins the I/O right after submission when the queue
// is empty). Only asynchronous operations are paced by the bandwidth
// limit: the limit exists to stretch hidden I/O across the compute phase,
// and throttling a blocking operation would only prolong visible I/O.
func (a *Agent) Submit(class pfs.Class, bytes int64, async bool) *Request {
	if a.closed {
		panic("adio: submit on closed agent")
	}
	if bytes < 0 {
		panic("adio: negative request size")
	}
	req := &Request{done: des.NewCompletion(a.e)}
	req.Stats.Class = class
	req.Stats.Async = async
	req.Stats.Bytes = bytes
	req.Stats.Submitted = a.e.Now()
	a.queue.Put(req)
	return req
}

// Close shuts the agent down after it drains its queue. Further Submits
// panic.
func (a *Agent) Close() {
	if a.closed {
		return
	}
	a.closed = true
	a.queue.Put(nil) // poison pill
	if a.bb != nil {
		a.bb.Close()
	}
}

// TotalBytes returns the bytes executed for the class so far.
func (a *Agent) TotalBytes(class pfs.Class) int64 { return a.totalBytes[class] }

// TotalSlept returns the cumulative throttle sleep time.
func (a *Agent) TotalSlept() des.Duration { return a.totalSlept }

// RequestsDone returns the number of completed requests.
func (a *Agent) RequestsDone() int { return a.requestsDone }

// Hiccups returns how many scheduling hiccups this agent has charged.
func (a *Agent) Hiccups() int { return a.hiccups }

// QueueLen returns the number of requests waiting behind the current one.
func (a *Agent) QueueLen() int { return a.queue.Len() }

// serve is the agent main loop: pop a request, execute it throttled,
// complete its generalized request.
func (a *Agent) serve(p *des.Proc) {
	for {
		req := a.queue.Get(p)
		if req == nil {
			return
		}
		a.execute(p, req)
		req.done.Complete()
		a.requestsDone++
	}
}

// execute runs one request against the file system under the current
// limit, implementing the sub-request loop of Sec. V.
func (a *Agent) execute(p *des.Proc, req *Request) {
	req.Stats.Start = p.Now()
	req.Stats.Limit = a.limit[req.Stats.Class]
	if !req.Stats.Async {
		req.Stats.Limit = pfs.Unlimited
	}

	// Server-side queuing under storms: the request waits before its
	// first byte moves. Hidden from the application (it lands inside the
	// operation window), but it lengthens the measured throughput window.
	// The queuing time counts toward the first sub-request's actual
	// execution time — the paper's thread compares wall time, so server
	// stalls eat into the sleep budget rather than adding to it.
	queued := 0.0
	if lat := StormLatency(a.e, a.cfg.QueueLatencyPerFlow,
		a.fs.RecentOps(req.Stats.Class)); lat > 0 {
		p.Sleep(lat)
		queued = lat.Seconds()
	}

	// Buffered writes land in the burst-buffer tier at absorb speed; the
	// buffer's drainer shapes the traffic to the file system.
	if a.bb != nil && req.Stats.Class == pfs.Write {
		start := p.Now()
		a.bb.Write(p, req.Stats.Bytes)
		end := p.Now()
		req.Stats.Segments = append(req.Stats.Segments, Segment{Start: start, End: end})
		a.totalBytes[pfs.Write] += req.Stats.Bytes
		req.Stats.End = end
		return
	}

	remaining := req.Stats.Bytes
	deficit := 0.0 // Case-B overrun in seconds
	if a.cfg.CarryDeficit {
		deficit = a.carriedDeficit
	}
	for remaining > 0 {
		// The limit is re-read per sub-request: a limit installed while a
		// large request is in flight paces its remaining chunks, matching
		// the paper's thread, which consults the limit for every
		// sub-request it executes.
		limit := a.limit[req.Stats.Class]
		limited := req.Stats.Async && !math.IsInf(limit, 1)
		chunk := remaining
		if limited && chunk > a.cfg.SubRequestSize {
			chunk = a.cfg.SubRequestSize
		}
		// Step 2: required time from the limit and the sub-request size.
		required := 0.0
		if limited {
			required = float64(chunk) / limit
		}
		// Step 3: the sub-request itself is a blocking transfer at full
		// speed; throttling happens through the duty cycle.
		start, end := a.fs.Transfer(p, req.Stats.Class, chunk, a.cfg.FlowWeight, pfs.Unlimited, a.cfg.Tag)
		req.Stats.Segments = append(req.Stats.Segments, Segment{Start: start, End: end})
		actual := end.Sub(start).Seconds() + queued
		queued = 0
		a.chargeInterference(end.Sub(start).Seconds(), chunk)
		remaining -= chunk

		if !limited {
			continue
		}
		if actual < required {
			// Case A: faster than the limit allows; sleep the remainder,
			// shortened by any accumulated overrun.
			sleep := required - actual
			if deficit > 0 {
				use := math.Min(deficit, sleep)
				deficit -= use
				sleep -= use
			}
			if sleep > 0 {
				// The sleep applies to the final sub-request as well: the
				// operation is not reported complete before its required
				// time elapses, which is what makes the measured
				// throughput track the limit (paper Fig. 9).
				d := des.DurationOf(sleep)
				p.Sleep(d)
				req.Stats.SleptFor += d
				a.totalSlept += d
			}
		} else {
			// Case B: slower than required; bank the difference.
			deficit += actual - required
		}
	}
	if a.cfg.CarryDeficit {
		a.carriedDeficit = deficit
	}
	a.totalBytes[req.Stats.Class] += req.Stats.Bytes
	req.Stats.End = p.Now()

	// An unpaced request (the agent never yielded into a timed sleep)
	// competed for the host's cores at full tilt; occasionally that costs
	// the host a scheduling hiccup.
	if a.host != nil && a.cfg.HiccupProb > 0 && req.Stats.Async &&
		req.Stats.SleptFor == 0 && req.Stats.Bytes > 0 {
		rng := a.e.Rand()
		if rng.Float64() < a.cfg.HiccupProb {
			delay := rng.ExpFloat64() * a.cfg.HiccupMean.Seconds()
			a.host.AddInterference(delay)
			a.hiccups++
		}
	}
}

// chargeInterference converts one transfer's duration and rate into a
// compute penalty for the host.
func (a *Agent) chargeInterference(durationSeconds float64, bytes int64) {
	if a.host == nil || durationSeconds <= 0 {
		return
	}
	rate := float64(bytes) / durationSeconds
	nodeRate := rate * float64(a.cfg.RanksPerNode)
	if pen := a.cfg.Interference.Penalty(durationSeconds, nodeRate); pen > 0 {
		a.host.AddInterference(pen)
	}
}
