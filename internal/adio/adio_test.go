package adio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

type fakeHost struct {
	penalty float64
}

func (h *fakeHost) AddInterference(s float64) { h.penalty += s }

func setup(cfg Config) (*des.Engine, *pfs.PFS, *Agent, *fakeHost) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	h := &fakeHost{}
	a := NewAgent(e, fs, h, cfg)
	return e, fs, a, h
}

func TestUnlimitedRequestRunsAtFullSpeed(t *testing.T) {
	e, _, a, _ := setup(Config{})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		req := a.Submit(pfs.Write, 200e6, true) // 2 s at 100 MB/s
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := stats.End.Sub(stats.Start).Seconds(); math.Abs(got-2) > 1e-6 {
		t.Fatalf("duration = %v, want 2s", got)
	}
	if len(stats.Segments) != 1 {
		t.Fatalf("unlimited request was chunked: %d segments", len(stats.Segments))
	}
	if stats.SleptFor != 0 {
		t.Fatalf("unlimited request slept %v", stats.SleptFor)
	}
	if !math.IsInf(stats.Limit, 1) {
		t.Fatalf("stats limit = %v", stats.Limit)
	}
	if a.TotalBytes(pfs.Write) != 200e6 || a.RequestsDone() != 1 {
		t.Fatalf("totals: bytes=%d done=%d", a.TotalBytes(pfs.Write), a.RequestsDone())
	}
}

func TestLimitedRequestTakesRequiredTime(t *testing.T) {
	e, _, a, _ := setup(Config{SubRequestSize: 10e6})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		a.SetLimit(10e6) // 10 MB/s
		req := a.Submit(pfs.Write, 100e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Required: 100e6 / 10e6 = 10 s, even though the FS could do it in 1 s.
	if got := stats.End.Sub(stats.Start).Seconds(); math.Abs(got-10) > 1e-3 {
		t.Fatalf("duration = %v, want ~10s", got)
	}
	if len(stats.Segments) != 10 {
		t.Fatalf("segments = %d, want 10", len(stats.Segments))
	}
	// Active transfer was only ~1s; the rest was throttle sleep.
	if got := stats.ActiveTransfer().Seconds(); math.Abs(got-1) > 1e-3 {
		t.Fatalf("active transfer = %v, want ~1s", got)
	}
	if got := stats.SleptFor.Seconds(); math.Abs(got-9) > 1e-3 {
		t.Fatalf("slept = %v, want ~9s", got)
	}
}

func TestSmallRequestExecutedDirectly(t *testing.T) {
	e, _, a, _ := setup(Config{SubRequestSize: 8 << 20})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		a.SetLimit(1e6)
		req := a.Submit(pfs.Write, 1<<20, true) // below the sub-request size
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(stats.Segments) != 1 {
		t.Fatalf("small request chunked into %d segments", len(stats.Segments))
	}
	// Still paced: 1 MiB at 1 MB/s ≈ 1.05 s.
	want := float64(1<<20) / 1e6
	if got := stats.End.Sub(stats.Start).Seconds(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

func TestDeficitReducesSleep(t *testing.T) {
	// FS so slow the first chunks overrun their required time; later the
	// capacity recovers and the banked overrun shortens the sleeps.
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 5e6, ReadCapacity: 5e6})
	a := NewAgent(e, fs, nil, Config{SubRequestSize: 10e6})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		a.SetLimit(10e6) // required rate twice what the FS delivers
		req := a.Submit(pfs.Write, 50e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Every chunk takes 2 s against a 1 s requirement: pure Case B. The
	// agent must never sleep, and the duration is FS-bound: 10 s.
	if stats.SleptFor != 0 {
		t.Fatalf("slept %v despite overrunning", stats.SleptFor)
	}
	if got := stats.End.Sub(stats.Start).Seconds(); math.Abs(got-10) > 1e-3 {
		t.Fatalf("duration = %v, want 10s", got)
	}
}

func TestSetLimitClampsAndClears(t *testing.T) {
	_, _, a, _ := setup(Config{MinLimit: 1000})
	a.SetLimit(1)
	if a.Limit() != 1000 {
		t.Fatalf("limit = %v, want clamped 1000", a.Limit())
	}
	a.SetLimit(5000)
	if a.Limit() != 5000 {
		t.Fatalf("limit = %v", a.Limit())
	}
	a.SetLimit(pfs.Unlimited)
	if !math.IsInf(a.Limit(), 1) {
		t.Fatalf("limit = %v, want unlimited", a.Limit())
	}
	a.Close()
}

func TestQueueServesFIFO(t *testing.T) {
	e, _, a, _ := setup(Config{})
	var ends []des.Time
	e.Spawn("app", func(p *des.Proc) {
		r1 := a.Submit(pfs.Write, 100e6, true) // 1 s
		r2 := a.Submit(pfs.Write, 100e6, true) // next second
		if a.QueueLen() < 1 {
			t.Error("queue should hold the second request")
		}
		r2.Wait(p)
		if !r1.Done() {
			t.Error("r1 not done before r2")
		}
		ends = append(ends, r1.CompletedAt(), r2.CompletedAt())
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !(ends[0] < ends[1]) {
		t.Fatalf("completion order: %v", ends)
	}
	if got := ends[1].Seconds(); math.Abs(got-2) > 1e-3 {
		t.Fatalf("second request completed at %v, want 2s", got)
	}
}

func TestInterferenceCharged(t *testing.T) {
	e, _, a, h := setup(Config{
		Interference: mpi.InterferenceModel{Kappa: 1, RefRate: 100e6, Exponent: 2},
		RanksPerNode: 1,
	})
	e.Spawn("app", func(p *des.Proc) {
		a.Submit(pfs.Write, 100e6, true).Wait(p) // 1 s at the reference rate
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.penalty-1) > 1e-6 {
		t.Fatalf("penalty = %v, want 1", h.penalty)
	}
}

func TestInterferenceLowerWhenThrottled(t *testing.T) {
	run := func(limit float64) float64 {
		e := des.NewEngine(1)
		fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
		h := &fakeHost{}
		a := NewAgent(e, fs, h, Config{
			SubRequestSize: 1e6,
			Interference:   mpi.InterferenceModel{Kappa: 1, RefRate: 100e6, Exponent: 2},
			RanksPerNode:   1,
		})
		e.Spawn("app", func(p *des.Proc) {
			a.SetLimit(limit)
			a.Submit(pfs.Write, 100e6, true).Wait(p)
			a.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return h.penalty
	}
	burst := run(pfs.Unlimited)
	throttled := run(10e6)
	if throttled >= burst {
		t.Fatalf("throttled penalty %v >= burst penalty %v", throttled, burst)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	e, _, a, _ := setup(Config{})
	var done bool
	e.Spawn("app", func(p *des.Proc) {
		req := a.Submit(pfs.Write, 100e6, true)
		a.Close()
		a.Close() // idempotent
		req.Wait(p)
		done = req.Done()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("queued request not drained on close")
	}
	if len(e.Stalled()) != 0 {
		t.Fatalf("agent proc stalled: %v", e.Stalled())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("submit after close did not panic")
		}
	}()
	a.Submit(pfs.Write, 1, true)
}

func TestSubmitValidation(t *testing.T) {
	_, _, a, _ := setup(Config{})
	defer a.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	a.Submit(pfs.Write, -1, true)
}

func TestZeroByteRequestCompletes(t *testing.T) {
	e, _, a, _ := setup(Config{})
	e.Spawn("app", func(p *des.Proc) {
		req := a.Submit(pfs.Write, 0, true)
		req.Wait(p)
		if req.Stats.End != req.Stats.Start {
			t.Error("zero-byte request took time")
		}
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestThrottlePacingProperty: for random request sizes and limits, the
// wall-clock duration of a limited request on an uncontended FS is at
// least bytes/limit (the shaping guarantee) and at most that plus one
// sub-request of slack, and average throughput never exceeds the limit.
func TestThrottlePacingProperty(t *testing.T) {
	f := func(sizeKB uint32, limitKB uint32) bool {
		bytes := int64(sizeKB%100_000)*1024 + 1
		limit := float64(limitKB%50_000)*1024 + 50_000
		e := des.NewEngine(3)
		fs := pfs.New(e, pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
		a := NewAgent(e, fs, nil, Config{SubRequestSize: 1 << 20, MinLimit: 1})
		var stats RequestStats
		e.Spawn("app", func(p *des.Proc) {
			a.SetLimit(limit)
			req := a.Submit(pfs.Write, bytes, true)
			req.Wait(p)
			stats = req.Stats
			a.Close()
		})
		if err := e.Run(); err != nil {
			return false
		}
		dur := stats.End.Sub(stats.Start).Seconds()
		required := float64(bytes) / limit
		if dur < required-1e-6 {
			return false // finished faster than the limit permits
		}
		slack := float64(1<<20)/limit + 1e-3
		return dur <= required+slack
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCarryDeficitAblation: with CarryDeficit, an overrun in request 1
// shortens the sleeps of request 2; without it, request 2 is fully paced.
func TestCarryDeficitAblation(t *testing.T) {
	run := func(carry bool) des.Duration {
		e := des.NewEngine(1)
		// Slow FS (5 MB/s) for the first request via noise-free capacity;
		// we emulate the overrun by setting a limit above the capacity.
		fs := pfs.New(e, pfs.Config{WriteCapacity: 5e6, ReadCapacity: 5e6})
		a := NewAgent(e, fs, nil, Config{SubRequestSize: 5e6, CarryDeficit: carry})
		var total des.Duration
		e.Spawn("app", func(p *des.Proc) {
			a.SetLimit(10e6)
			a.Submit(pfs.Write, 20e6, true).Wait(p) // overruns: banks 2 s of deficit
			// Second request is paced below the FS speed, so it would
			// normally sleep; carried deficit eats into that sleep.
			a.SetLimit(2.5e6)
			req := a.Submit(pfs.Write, 10e6, true)
			req.Wait(p)
			total = req.Stats.SleptFor
			a.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	withCarry := run(true)
	withoutCarry := run(false)
	if withCarry >= withoutCarry {
		t.Fatalf("carry=%v nocarry=%v: carried deficit did not reduce sleep",
			withCarry, withoutCarry)
	}
}

func TestHiccupsOnlyForUnpacedRequests(t *testing.T) {
	run := func(limit float64) (int, float64) {
		e := des.NewEngine(5)
		fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
		h := &fakeHost{}
		a := NewAgent(e, fs, h, Config{HiccupProb: 1, HiccupMean: 100 * des.Millisecond})
		e.Spawn("app", func(p *des.Proc) {
			a.SetLimit(limit)
			for i := 0; i < 20; i++ {
				a.Submit(pfs.Write, 10e6, true).Wait(p)
			}
			a.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return a.Hiccups(), h.penalty
	}
	unpacedHiccups, unpacedPenalty := run(pfs.Unlimited)
	pacedHiccups, pacedPenalty := run(1e6) // forces sleeps: paced
	if unpacedHiccups != 20 || unpacedPenalty <= 0 {
		t.Fatalf("unpaced: hiccups=%d penalty=%v", unpacedHiccups, unpacedPenalty)
	}
	if pacedHiccups != 0 || pacedPenalty != 0 {
		t.Fatalf("paced agent hiccupped: %d, %v", pacedHiccups, pacedPenalty)
	}
}

func TestHiccupDisabledByDefault(t *testing.T) {
	e, _, a, h := setup(Config{})
	e.Spawn("app", func(p *des.Proc) {
		a.Submit(pfs.Write, 10e6, true).Wait(p)
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Hiccups() != 0 || h.penalty != 0 {
		t.Fatal("default config must not hiccup")
	}
}

func TestBurstBufferedWrites(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	a := NewAgent(e, fs, nil, Config{
		BurstBuffer: &pfs.BurstBufferConfig{
			Capacity:  1 << 30,
			WriteRate: 1e9,  // 10× the PFS
			DrainRate: 20e6, // gentle footprint on the shared system
		},
	})
	if a.BurstBuffer() == nil {
		t.Fatal("buffer not created")
	}
	var writeDone, readDone des.Time
	e.Spawn("app", func(p *des.Proc) {
		// The write completes at buffer speed, not PFS speed.
		a.Submit(pfs.Write, 100e6, true).Wait(p)
		writeDone = p.Now()
		// Reads bypass the buffer: PFS speed.
		a.Submit(pfs.Read, 100e6, true).Wait(p)
		readDone = p.Now()
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := writeDone.Seconds(); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("buffered write took %v, want 0.1s", got)
	}
	if got := readDone.Sub(writeDone).Seconds(); math.Abs(got-1) > 0.1 {
		t.Fatalf("read took %v, want ~1s (PFS speed)", got)
	}
	// The drain eventually moves everything to the PFS at the capped rate.
	if a.BurstBuffer().Drained() != 100e6 {
		t.Fatalf("drained = %d", a.BurstBuffer().Drained())
	}
	if got := e.Now().Seconds(); got < 5 {
		t.Fatalf("drain finished at %v, want ≈5s (100 MB at 20 MB/s)", got)
	}
}
