package adio

import (
	"math"
	"testing"

	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/pfs"
)

// scriptedFaults is a deterministic FaultModel: it fails the first
// failFirst sub-request attempts, stalls queues by queue, and slows node
// slowNode by slowdown.
type scriptedFaults struct {
	failFirst int // attempts to fail before succeeding
	attempts  int
	queue     float64
	slowNode  int
	slowdown  float64
}

func (f *scriptedFaults) QueueFactor(pfs.Class) float64 {
	if f.queue > 1 {
		return f.queue
	}
	return 1
}

func (f *scriptedFaults) NodeSlowdown(node int) float64 {
	if node == f.slowNode && f.slowdown > 1 {
		return f.slowdown
	}
	return 1
}

func (f *scriptedFaults) ErrorProb(pfs.Class) float64 {
	f.attempts++
	if f.attempts <= f.failFirst {
		return 1 // rand.Float64() ∈ [0,1) is always below 1: certain failure
	}
	return 0
}

func TestTransientErrorsRetriedWithBackoff(t *testing.T) {
	e, _, a, _ := setup(Config{RetryBackoff: 10 * des.Millisecond})
	a.SetFaults(&scriptedFaults{failFirst: 2})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		req := a.Submit(pfs.Write, 10e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 2 || a.Retries() != 2 {
		t.Fatalf("retries = %d/%d, want 2", stats.Retries, a.Retries())
	}
	// Exponential backoff: 10 ms then 20 ms.
	if got := stats.BackoffSlept; got != 30*des.Millisecond {
		t.Fatalf("backoff slept %v, want 30ms", got)
	}
	if stats.Failed || a.RetryExhausted() != 0 {
		t.Fatal("request wrongly marked failed")
	}
	// The retried attempts burned wire time but the bytes arrived once.
	if a.TotalBytes(pfs.Write) != 10e6 {
		t.Fatalf("delivered = %d, want 10e6", a.TotalBytes(pfs.Write))
	}
	// Three attempts of 0.1 s each plus 30 ms backoff.
	if got := stats.End.Sub(stats.Start).Seconds(); math.Abs(got-0.33) > 1e-3 {
		t.Fatalf("duration = %v, want ~0.33s", got)
	}
}

func TestRetryExhaustionMarksRequestFailed(t *testing.T) {
	e, _, a, _ := setup(Config{RetryMax: 2, SubRequestSize: 1e6})
	a.SetFaults(&scriptedFaults{failFirst: 1 << 30}) // never succeeds
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		a.SetLimit(50e6)
		req := a.Submit(pfs.Write, 10e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !stats.Failed {
		t.Fatal("exhausted request not marked Failed")
	}
	if stats.Retries != 2 || a.RetryExhausted() != 1 {
		t.Fatalf("retries = %d, exhausted = %d; want 2, 1", stats.Retries, a.RetryExhausted())
	}
	// Nothing was delivered: the first chunk never went through.
	if a.TotalBytes(pfs.Write) != 0 {
		t.Fatalf("failed request counted %d delivered bytes", a.TotalBytes(pfs.Write))
	}
	if !stats.Failed || stats.End == 0 {
		t.Fatal("request did not complete with an end time")
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults() // 10 ms base, 1 s cap
	want := []des.Duration{
		10 * des.Millisecond, 20 * des.Millisecond, 40 * des.Millisecond,
		80 * des.Millisecond, 160 * des.Millisecond, 320 * des.Millisecond,
		640 * des.Millisecond, des.Second, des.Second,
	}
	for i, w := range want {
		if got := retryBackoff(cfg, i+1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Deep failure counts must not overflow the shift into a zero or
	// negative sleep.
	for _, n := range []int{21, 63, 64, 1000} {
		if got := retryBackoff(cfg, n); got != des.Second {
			t.Errorf("backoff(%d) = %v, want the 1s cap", n, got)
		}
	}
}

func TestQueueWaitRecordedAndFoldedIntoFirstSegment(t *testing.T) {
	e, fs, a, _ := setup(Config{QueueLatencyPerFlow: 10 * des.Millisecond})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		// Raise the burst concurrency the storm model keys on; the mpiio
		// layer does this on submit in the full stack.
		fs.NoteOp(pfs.Write)
		fs.NoteOp(pfs.Write)
		req := a.Submit(pfs.Write, 10e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Queued <= 0 {
		t.Fatal("storm-queue wait not recorded in Stats.Queued")
	}
	if len(stats.Segments) == 0 {
		t.Fatal("no segments recorded")
	}
	// The first segment reaches back over the queue wait: Δt° rebuilt from
	// the segments must include the server-side stall.
	if got := stats.Segments[0].Start; got != stats.Start {
		t.Fatalf("first segment starts at %v, want the request start %v (queue folded in)", got, stats.Start)
	}
	wire := des.DurationOf(0.1) // 10e6 at 100 MB/s
	if got := stats.ActiveTransfer(); got < stats.Queued+wire-des.Millisecond {
		t.Fatalf("active transfer %v does not cover queue %v + wire %v", got, stats.Queued, wire)
	}
}

func TestServerStallFaultScalesQueueWait(t *testing.T) {
	run := func(queue float64) des.Duration {
		e, fs, a, _ := setup(Config{QueueLatencyPerFlow: 10 * des.Millisecond})
		a.SetFaults(&scriptedFaults{queue: queue})
		var stats RequestStats
		e.Spawn("app", func(p *des.Proc) {
			fs.NoteOp(pfs.Write)
			req := a.Submit(pfs.Write, 1e6, true)
			req.Wait(p)
			stats = req.Stats
			a.Close()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return stats.Queued
	}
	base, stalled := run(1), run(3)
	if base <= 0 {
		t.Fatal("no baseline queue wait")
	}
	// Identical seed and draw order: the stall multiplies the same sample
	// (up to nanosecond rounding of the duration conversion).
	if got, want := stalled, 3*base; got < want-2 || got > want+2 {
		t.Fatalf("stalled queue wait = %v, want 3× the baseline %v", got, base)
	}
}

func TestBufferedWriteStatsMatchDirectPathSemantics(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.Config{WriteCapacity: 100e6, ReadCapacity: 100e6})
	h := &fakeHost{}
	a := NewAgent(e, fs, h, Config{
		Interference: mpi.InterferenceModel{Kappa: 1, RefRate: 100e6, Exponent: 2},
		RanksPerNode: 1,
		HiccupProb:   1, // certain: the hiccup tail must run for buffered writes
		BurstBuffer: &pfs.BurstBufferConfig{
			Capacity:  1 << 30,
			WriteRate: 1e9,
			DrainRate: 20e6,
		},
	})
	var stats RequestStats
	e.Spawn("app", func(p *des.Proc) {
		a.SetLimit(5e6) // must NOT show up in the buffered request's stats
		req := a.Submit(pfs.Write, 100e6, true)
		req.Wait(p)
		stats = req.Stats
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The buffered path is never paced, so limiter feedback must see an
	// unthrottled request — not the stale write limit.
	if !math.IsInf(stats.Limit, 1) {
		t.Fatalf("buffered request reported limit %v, want Unlimited", stats.Limit)
	}
	if len(stats.Segments) != 1 || stats.End == 0 {
		t.Fatalf("buffered request segments/end: %d/%v", len(stats.Segments), stats.End)
	}
	if a.TotalBytes(pfs.Write) != 100e6 {
		t.Fatalf("buffered bytes not counted: %d", a.TotalBytes(pfs.Write))
	}
	// Interference and the hiccup tail are charged like the direct path's.
	if h.penalty <= 0 {
		t.Fatal("buffered write charged no interference")
	}
	if a.Hiccups() != 1 {
		t.Fatalf("hiccups = %d, want 1 (unpaced buffered write, prob 1)", a.Hiccups())
	}
}

func TestFaultModelNilMeansHealthy(t *testing.T) {
	e, _, a, _ := setup(Config{})
	a.SetFaults(&scriptedFaults{failFirst: 1})
	a.SetFaults(nil) // removal must fully disarm the model
	e.Spawn("app", func(p *des.Proc) {
		a.Submit(pfs.Write, 10e6, true).Wait(p)
		a.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Retries() != 0 {
		t.Fatalf("retries = %d after removing the fault model", a.Retries())
	}
}
