// Streaming + online phase detection example: TMIO's TCP streaming mode
// feeding the live telemetry gateway.
//
//	go run ./examples/streaming
//
// The paper's TMIO can ship its metrics over TCP instead of writing a
// file, and has been combined with FTIO (frequency techniques for I/O) to
// detect an application's I/O phases online. This example wires the whole
// loop up: an in-process gateway (internal/gateway, the same server
// cmd/iogateway runs standalone) ingests the per-phase records over the
// zero-copy binary frame protocol (docs/STREAM_FORMAT.md; the gateway
// sniffs it apart from JSON lines per connection) while a WaComM++
// simulation streams them, and its HTTP API is polled for the
// application's online B/B_L/T series and the FTIO next-burst forecast —
// the view a scheduler would act on mid-run.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"iobehind"
	"iobehind/internal/gateway"
	"iobehind/internal/tmio"
)

func main() {
	// The gateway: TCP ingest on an ephemeral port, HTTP on a test server.
	gw := gateway.New(gateway.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go gw.Serve(ln)
	web := httptest.NewServer(gw.Handler())
	defer web.Close()
	fmt.Printf("gateway: ingest on %s, HTTP on %s\n\n", ln.Addr(), web.URL)

	// Trace a WaComM++ run, streaming each closed phase to the gateway.
	// The slow file system widens the hourly write bursts so the online
	// detector has a signal to bin.
	sim := iobehind.NewSim(iobehind.Options{
		Ranks:  8,
		FS:     &iobehind.FSConfig{WriteCapacity: 64e6, ReadCapacity: 64e6},
		Tracer: iobehind.TracerConfig{StreamID: "wacomm"},
	})
	sink, err := tmio.DialSinkWith(ln.Addr().String(), tmio.SinkOptions{Binary: true})
	if err != nil {
		log.Fatal(err)
	}
	sim.Tracer.SetSink(sink)
	report, err := sim.Run(iobehind.WacommMain(sim.IO, iobehind.WacommConfig{
		Particles:  200_000,
		Iterations: 24,
	}))
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	if n := sink.Dropped(); n > 0 {
		fmt.Printf("(sink dropped %d records under backpressure)\n", n)
	}

	// Poll the gateway until the connection has drained: the consumer
	// empties its queue before the connection is released, so once no
	// connections are active everything sent has been aggregated.
	var info gateway.AppInfo
	for {
		var ok bool
		info, ok = gw.AppInfo("wacomm")
		if ok && gw.Stats().ConnsActive == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("gateway ingested %d records for %q\n", info.Records, info.ID)
	fmt.Printf("online required bandwidth: %.3g MB/s (offline report: %.3g MB/s)\n\n",
		info.RequiredBandwidth/1e6, report.RequiredBandwidth/1e6)

	// The online step series, as a scheduler would fetch them mid-run.
	var series struct {
		B []struct{ T, V float64 } `json:"b"`
		T []struct{ T, V float64 } `json:"t"`
	}
	getJSON(web.URL+"/apps/wacomm/series", &series)
	fmt.Printf("online series: %d B steps, %d T steps\n", len(series.B), len(series.T))

	// And the FTIO forecast over the live data.
	var pred gateway.PredictJSON
	getJSON(web.URL+"/apps/wacomm/predict", &pred)
	if !pred.OK {
		fmt.Println("no confident forecast (period not detectable yet)")
		return
	}
	fmt.Printf("FTIO over the stream: period %.2f s, confidence %.2f\n",
		pred.PeriodSec, pred.Confidence)
	fmt.Printf("predicted next burst (had the app continued): t = %.1f s\n",
		pred.NextBurstSec)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
