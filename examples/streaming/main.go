// Streaming + phase detection example: TMIO's TCP streaming mode feeding
// FTIO-style frequency analysis.
//
//	go run ./examples/streaming
//
// The paper's TMIO can ship its metrics over TCP instead of writing a
// file, and has been combined with FTIO (frequency techniques for I/O) to
// detect an application's I/O phases online. This example wires both up:
// a TCP collector receives the per-phase records as JSON lines while the
// simulation runs, and the detector recovers the application's
// checkpointing period from the traced phases.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"

	"iobehind"
	"iobehind/internal/tmio"
)

func main() {
	// A TCP collector, standing in for the paper's ZeroMQ endpoint.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	lines := make(chan string, 1024)
	go collect(ln, lines)

	// Trace a periodic checkpointing application, streaming each closed
	// phase to the collector.
	sim := iobehind.NewSim(iobehind.Options{
		Ranks:    8,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
	})
	sink, err := tmio.DialSink(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	sim.Tracer.SetSink(sink)

	report, err := sim.Run(iobehind.PhasedMain(sim.IO, iobehind.PhasedConfig{
		Phases:        12,
		BytesPerPhase: 32 << 20,
		Compute:       3 * iobehind.Second, // the period to detect
	}))
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}

	// Show a few of the streamed records.
	fmt.Println("Streamed phase records (JSON lines over TCP):")
	for i := 0; i < 3; i++ {
		fmt.Println(" ", <-lines)
	}
	total := 3
	for range lines {
		total++
	}
	fmt.Printf("  ... %d records total\n\n", total)

	// FTIO: recover the checkpoint period from the traced phases.
	res, err := iobehind.DetectPeriod(report.TPhases, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FTIO phase detection: %s\n", res)
	fmt.Printf("ground truth period: ~3 s (compute) + write pacing\n")
	next := res.PredictNext(report.TPhases[len(report.TPhases)-1].Start, iobehind.Time(report.Runtime))
	fmt.Printf("predicted next burst (had the app continued): t = %.1f s\n", next.Seconds())
}

// collect reads JSON lines from the first accepted connection and
// validates each one parses.
func collect(ln net.Listener, out chan<- string) {
	defer close(out)
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		var rec tmio.StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		out <- line
	}
}
