// Burst-buffer example: the paper's future-work setting — "a similar
// definition [of the required bandwidth] for synchronous I/O in the
// presence of burst buffers".
//
//	go run ./examples/burstbuffer
//
// A synchronous application cannot hide its I/O behind compute, so
// normally its runtime depends directly on file-system speed. With a
// node-local burst buffer, the synchronous write completes at buffer speed
// and the *drain* to the shared file system is what needs provisioning.
// The drain rate plays the role the required bandwidth plays for
// asynchronous I/O: provision it at bytes/period and the buffer never
// fills, while the shared system only ever sees the gentle drain.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	const (
		ranks         = 8
		bytesPerPhase = 512 << 20 // 512 MiB synchronous checkpoint
		phases        = 6
	)
	period := 10 * iobehind.Second

	// The burst-buffer analogue of the paper's required bandwidth.
	drain := float64(bytesPerPhase) / period.Seconds() * 1.1

	slowFS := iobehind.FSConfig{WriteCapacity: 2e9, ReadCapacity: 2e9}

	run := func(bb *iobehind.BurstBufferConfig) *iobehind.Report {
		rep, err := runSync(bb, slowFS, ranks, phases, bytesPerPhase, period)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	without := run(nil)
	with := run(&iobehind.BurstBufferConfig{
		Capacity:  1 << 30,
		WriteRate: 6e9, // node-local NVMe speed
		DrainRate: drain,
	})

	fmt.Println("Synchronous checkpointing, 8 ranks, 512 MiB per rank every 10 s")
	fmt.Printf("required drain rate (paper's B, sync analogue): %.0f MB/s per rank\n\n", drain/1e6)
	fmt.Printf("%-22s %12s %12s\n", "", "direct to FS", "burst buffer")
	fmt.Printf("%-22s %11.1fs %11.1fs\n", "runtime",
		without.AppTime.Seconds(), with.AppTime.Seconds())
	dw, db := without.Distribution(), with.Distribution()
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "visible I/O", dw.VisibleIO(), db.VisibleIO())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "compute (I/O free)", dw.ComputeFree, db.ComputeFree)
	fmt.Println("\nWith the buffer, the synchronous bursts complete at NVMe speed and")
	fmt.Println("the shared file system only ever sees the provisioned drain rate —")
	fmt.Println("the same flattening the limiter achieves for asynchronous I/O.")
}

func runSync(bb *iobehind.BurstBufferConfig, fs iobehind.FSConfig,
	ranks, phases int, bytes int64, period iobehind.Duration) (*iobehind.Report, error) {
	sim := iobehind.NewSim(iobehind.Options{
		Ranks: ranks,
		FS:    &fs,
		Agent: iobehind.AgentConfig{BurstBuffer: bb},
	})
	return sim.Run(func(r *iobehind.Rank) {
		f := sim.IO.Open(r, fmt.Sprintf("ckpt-%d.dat", r.ID()))
		ioTime := iobehind.Duration(0)
		for j := 0; j < phases; j++ {
			before := r.Now()
			f.WriteAt(int64(j)*bytes, bytes) // synchronous checkpoint
			ioTime += r.Now().Sub(before)
			// Compute until the period boundary.
			rest := period - r.Now().Sub(before)
			if rest > 0 {
				r.Compute(rest)
			}
		}
		r.Finalize()
	})
}
