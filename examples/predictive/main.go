// Predictive I/O scheduling: the full TMIO → FTIO → arbiter loop the
// paper sketches as future work.
//
//	go run ./examples/predictive
//
// A strongly periodic synchronous job shares the file system with a
// compute-heavy asynchronous job. The reactive policy caps the async job
// when it sees contention; the predictive policy detects the sync job's
// burst period from its observed bandwidth (FTIO), forecasts the next
// burst, and installs the cap *before* the burst arrives — then releases
// it in the gaps, where throttling would only waste the idle bandwidth.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	fs := iobehind.FSConfig{WriteCapacity: 1e9, ReadCapacity: 1e9}
	jobs := []iobehind.JobSpec{
		// Periodic sync job: 6 s compute, ~2 s burst, 12 cycles
		// (a 25% duty cycle leaves real gaps between bursts).
		{Nodes: 4, Loops: 12, BytesPerNode: 1 << 29, Compute: 6 * iobehind.Second},
		// Compute-heavy async job.
		{Nodes: 4, Async: true, Loops: 16, BytesPerNode: 1 << 27,
			Compute: 5 * iobehind.Second},
	}
	run := func(policy iobehind.LimitPolicy) *iobehind.ClusterResult {
		res, err := iobehind.RunCluster(iobehind.ClusterConfig{
			Nodes: 16, FS: &fs, Jobs: jobs, Policy: policy,
			MonitorInterval: 250 * iobehind.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%-24s %12s %12s %8s\n", "policy", "sync job", "async job", "toggles")
	for _, p := range []struct {
		name   string
		policy iobehind.LimitPolicy
	}{
		{"no limit", iobehind.NoLimit},
		{"reactive (contention)", iobehind.LimitDuringContention},
		{"predictive (FTIO)", iobehind.LimitPredictive},
	} {
		res := run(p.policy)
		fmt.Printf("%-24s %11.1fs %11.1fs %8d\n", p.name,
			res.Jobs[0].Runtime().Seconds(),
			res.Jobs[1].Runtime().Seconds(),
			res.LimitToggles)
	}
	fmt.Println("\nThe predictive policy toggles the cap in step with the sync job's")
	fmt.Println("detected burst period: capped just ahead of each burst, free in the")
	fmt.Println("gaps — contention protection without permanent throttling.")
}
