// HACC-IO example: compare all three limiting strategies (and no limiting)
// on the modified HACC-IO benchmark of the paper's Sec. VI-B.
//
//	go run ./examples/haccio
//
// The benchmark loops over compute → async write → verify → async read
// blocks (Fig. 12); the write hides behind the verify block and the read
// behind the next compute block. Each strategy trades risk for
// exploitation: direct is aggressive, up-only is safe, adaptive sits in
// between.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	strategies := []iobehind.StrategyConfig{
		{Strategy: iobehind.Direct, Tol: 1.1},
		{Strategy: iobehind.UpOnly, Tol: 1.1},
		{Strategy: iobehind.Adaptive, Tol: 1.1},
		{}, // no limiting
	}

	fmt.Println("HACC-IO, 32 ranks, 5 loops, 2e6 particles/rank — strategy comparison")
	fmt.Printf("%-20s %10s %12s %10s %10s %10s\n",
		"strategy", "runtime", "B required", "exploit", "lost", "T peak")
	for i, strat := range strategies {
		rep, err := iobehind.RunHacc(iobehind.Options{
			Ranks:    32,
			Seed:     int64(i + 1),
			Strategy: strat,
		}, iobehind.HaccConfig{
			Loops:            5,
			ParticlesPerRank: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := rep.Distribution()
		// Peak throughput after the limiter engages (phase >= 2).
		var throttledPeak float64
		for _, ph := range rep.TPhases {
			if ph.Index >= 2 && ph.Value > throttledPeak {
				throttledPeak = ph.Value
			}
		}
		fmt.Printf("%-20s %9.1fs %10.2f GB/s %9.1f%% %9.1f%% %7.0f MB/s\n",
			strat.Label(),
			rep.AppTime.Seconds(),
			rep.RequiredBandwidth/1e9,
			d.ExploitTotal(),
			d.AsyncWriteLost+d.AsyncReadLost,
			throttledPeak/1e6,
		)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - runtime barely changes: the limits only reshape *hidden* I/O;")
	fmt.Println("  - exploit (I/O hidden behind compute) jumps with any strategy;")
	fmt.Println("  - the throttled throughput peak collapses from file-system burst")
	fmt.Println("    speed to roughly the required bandwidth — the flattened burst")
	fmt.Println("    spares the shared file system for everyone else.")
}
