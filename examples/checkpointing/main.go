// Checkpoint/restart under failures: how asynchronous, throttled
// checkpointing changes the classical Young/Daly trade-off.
//
//	go run ./examples/checkpointing
//
// With synchronous checkpoints, every checkpoint costs wall time, so the
// interval balances checkpoint overhead against lost work (Young's
// √(2·MTBF·C)). Asynchronous checkpoints hide the cost behind the next
// compute segment — and throttled to the required bandwidth they barely
// touch the shared file system — so shorter intervals become nearly free
// and the failure waste shrinks.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	const ranks = 16
	fs := iobehind.FSConfig{WriteCapacity: 4e9, ReadCapacity: 4e9}
	base := iobehind.CheckpointConfig{
		ComputeTotal:    120 * iobehind.Second,
		CheckpointBytes: 512 << 20,
		MTBF:            40 * iobehind.Second,
		RestartRead:     true,
	}

	// Synchronous checkpoint cost: 16 ranks × 512 MiB over 4 GB/s ≈ 2.1 s.
	ckptCost := iobehind.Duration(float64(base.CheckpointBytes) * ranks / fs.WriteCapacity * float64(iobehind.Second))
	young := iobehind.YoungInterval(base.MTBF, ckptCost)
	fmt.Printf("synchronous checkpoint cost ≈ %.1f s; Young interval ≈ %.1f s\n\n",
		ckptCost.Seconds(), young.Seconds())

	fmt.Printf("%-34s %10s\n", "configuration", "runtime")
	for _, c := range []struct {
		name     string
		interval iobehind.Duration
		async    bool
	}{
		{"sync, Young interval", young, false},
		{"sync, interval/4 (too eager)", young / 4, false},
		{"async+limit, Young interval", young, true},
		{"async+limit, interval/4", young / 4, true},
	} {
		cfg := base
		cfg.Interval = c.interval
		cfg.Async = c.async
		strat := iobehind.StrategyConfig{}
		if c.async {
			strat = iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.2}
		}
		rep, err := iobehind.RunCheckpoint(iobehind.Options{
			Ranks:    ranks,
			FS:       &fs,
			Strategy: strat,
		}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %9.1fs\n", c.name, rep.AppTime.Seconds())
	}

	fmt.Println("\nSynchronous checkpointing punishes eager intervals (every checkpoint")
	fmt.Println("is on the critical path); hidden, throttled checkpoints make short")
	fmt.Println("intervals cheap, so less work is lost per failure.")
}
