// IOR-style access-mode comparison: individual file pointers vs two-phase
// collective I/O vs asynchronous overlap, under burst-storm conditions.
//
//	go run ./examples/ior
//
// The paper's HACC-IO configuration deliberately uses "an individual file
// pointer to distinct files, which is more challenging than collective
// I/O". This example quantifies that remark with an IOR-shaped workload:
// many small per-rank transfers issued simultaneously. Individual mode
// pays the per-operation storm cost on every rank; collective mode
// aggregates to one operation per node; asynchronous mode hides the cost
// behind compute.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	base := iobehind.IorConfig{
		Segments:     6,
		BlockSize:    4 << 20, // small blocks: per-op costs dominate
		TransferSize: 4 << 20,
		ReadBack:     false,
	}

	modes := []struct {
		name string
		cfg  iobehind.IorConfig
	}{
		{"individual (blocking)", base},
		{"collective (write_at_all)", func() iobehind.IorConfig {
			c := base
			c.Collective = true
			return c
		}()},
		{"async + overlap", func() iobehind.IorConfig {
			c := base
			c.Async = true
			c.ComputeBetween = 500 * iobehind.Millisecond
			return c
		}()},
	}

	fmt.Println("IOR-style write phase: 64 ranks × 6 segments × 4 MiB, storm latency on")
	fmt.Printf("%-28s %10s %12s %12s\n", "mode", "runtime", "visible I/O", "ops")
	for _, m := range modes {
		rep, err := iobehind.RunIor(iobehind.Options{
			Ranks:        64,
			RanksPerNode: 16,
			Agent: iobehind.AgentConfig{
				SubmitLatencyPerFlow: 2 * iobehind.Millisecond,
			},
		}, m.cfg)
		if err != nil {
			log.Fatal(err)
		}
		d := rep.Distribution()
		fmt.Printf("%-28s %9.2fs %11.1f%% %12d\n",
			m.name, rep.AppTime.Seconds(), d.VisibleIO(), rep.SyncOps+rep.AsyncOps)
	}
	fmt.Println("\nCollective aggregation cuts the operation count per storm window by")
	fmt.Println("the ranks-per-node factor; asynchronous issue hides what remains.")
}
