// WaComM++ example: reproduce the Fig. 8/9 contrast at small scale — the
// same CFD kernel traced once without limiting (throughput bursts at
// file-system speed) and once with the up-only strategy (throughput
// follows the applied limit B_L of the previous phase).
//
//	go run ./examples/wacomm
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	cfg := iobehind.WacommConfig{
		Particles:  400_000,
		Iterations: 12,
	}

	burst := run(iobehind.StrategyConfig{}, cfg)
	limited := run(iobehind.StrategyConfig{Strategy: iobehind.UpOnly, Tol: 1.1}, cfg)

	fmt.Println("WaComM++, 24 ranks, 12 simulated hours")
	fmt.Println("\nWithout bandwidth limit (Fig. 8):")
	describe(burst)
	fmt.Println("\nWith the up-only strategy (Fig. 9):")
	describe(limited)

	fmt.Println("\nThe headline property of Fig. 9: after the limit starts, the")
	fmt.Println("throughput T of each phase follows the limit B_L derived from the")
	fmt.Println("previous phase, instead of bursting at file-system speed. The")
	fmt.Printf("application is unaffected: %.1f s vs %.1f s.\n",
		limited.AppTime.Seconds(), burst.AppTime.Seconds())
}

func run(strat iobehind.StrategyConfig, cfg iobehind.WacommConfig) *iobehind.Report {
	rep, err := iobehind.RunWacomm(iobehind.Options{
		Ranks:    24,
		Strategy: strat,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func describe(rep *iobehind.Report) {
	d := rep.Distribution()
	fmt.Printf("  runtime %.1f s, required bandwidth B = %.1f MB/s\n",
		rep.AppTime.Seconds(), rep.RequiredBandwidth/1e6)
	fmt.Printf("  exploit %.1f%%, waiting %.1f%%\n",
		d.ExploitTotal(), d.AsyncWriteLost+d.AsyncReadLost)
	if rep.FirstLimitAt != 0 {
		fmt.Printf("  limit first applied at %.1f s\n", rep.FirstLimitAt.Seconds())
	}
	// Sample a mid-run phase of rank 0 to show the pacing.
	for _, ph := range rep.TPhases {
		if ph.Rank == 0 && ph.Index == 5 {
			fmt.Printf("  rank 0, phase 5: throughput %.1f MB/s over %.2f s\n",
				ph.Value/1e6, ph.End.Sub(ph.Start).Seconds())
		}
	}
}
