// Contention example: the paper's motivating scenario (Figs. 1 and 2) at
// reduced scale. Four jobs share a small cluster; one of them performs
// asynchronous I/O. Limiting the async job to its *required* bandwidth —
// but only while the file system is contended — speeds up everyone else
// while barely affecting the async job.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	base := run(iobehind.NoLimit)
	limited := run(iobehind.LimitDuringContention)

	fmt.Println("Four jobs, 64-node cluster, 12 GB/s file system; job 2 is async")
	fmt.Printf("%-5s %-6s %-6s %14s %14s %8s\n",
		"job", "nodes", "async", "no limit", "limited", "delta")
	for i := range base.Jobs {
		b, l := base.Jobs[i], limited.Jobs[i]
		delta := 100 * (l.Runtime().Seconds() - b.Runtime().Seconds()) /
			b.Runtime().Seconds()
		fmt.Printf("%-5d %-6d %-6v %13.1fs %13.1fs %+7.1f%%\n",
			i, b.Nodes, b.Async, b.Runtime().Seconds(), l.Runtime().Seconds(), delta)
	}
	fmt.Printf("\nmakespan: %.1f s -> %.1f s (limit toggled %d times)\n",
		base.Makespan.Seconds(), limited.Makespan.Seconds(), limited.LimitToggles)
	fmt.Println("\nThe async job is throttled to what it needs to hide its I/O")
	fmt.Println("behind its compute phases — only while others contend for the")
	fmt.Println("file system. The spared bandwidth shortens the synchronous jobs,")
	fmt.Println("whose runtime depends directly on their I/O speed.")
}

func run(policy iobehind.LimitPolicy) *iobehind.ClusterResult {
	fs := iobehind.FSConfig{WriteCapacity: 12e9, ReadCapacity: 12e9}
	cfg := iobehind.ClusterConfig{
		Nodes:  64,
		FS:     &fs,
		Policy: policy,
		Jobs: []iobehind.JobSpec{
			{Nodes: 8, Loops: 6, BytesPerNode: 2 << 30, Compute: 4 * iobehind.Second},
			{Nodes: 16, Loops: 6, BytesPerNode: 2 << 30, Compute: 4 * iobehind.Second,
				Arrival: iobehind.Time(2 * iobehind.Second)},
			// The async job: compute-heavy, so its required bandwidth is
			// far below the burst share its 24 nodes entitle it to.
			{Nodes: 24, Async: true, Loops: 5, BytesPerNode: 1 << 29,
				Compute: 6 * iobehind.Second, Arrival: iobehind.Time(3 * iobehind.Second)},
			{Nodes: 8, Loops: 6, BytesPerNode: 2 << 30, Compute: 4 * iobehind.Second,
				Arrival: iobehind.Time(5 * iobehind.Second)},
		},
	}
	res, err := iobehind.RunCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
