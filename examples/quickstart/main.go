// Quickstart: trace a minimal asynchronous checkpointing application,
// find its required bandwidth, and let the direct strategy throttle it.
//
//	go run ./examples/quickstart
//
// The kernel is the paper's Fig. 3 pattern: every rank alternates compute
// phases with one asynchronous checkpoint write, fenced by MPI_Wait at the
// end of the next compute phase. TMIO measures, for every rank and phase,
// the bandwidth B_ij required to finish the write entirely behind the
// compute phase, and limits the next phase's throughput to B_ij · tol.
package main

import (
	"fmt"
	"log"

	"iobehind"
)

func main() {
	// 16 ranks, 64 MiB checkpoint per rank per phase, 1 s compute phases.
	// The direct strategy with tol = 1.1 throttles each rank to 110% of
	// its measured requirement.
	report, err := iobehind.RunPhased(iobehind.Options{
		Ranks:    16,
		Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: 1.1},
	}, iobehind.PhasedConfig{
		Phases:        10,
		BytesPerPhase: 64 << 20,
		Compute:       iobehind.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Quickstart: asynchronous checkpointing behind the scenes")
	fmt.Printf("  ranks                    %d\n", report.Ranks)
	fmt.Printf("  runtime                  %.2f s\n", report.AppTime.Seconds())
	fmt.Printf("  required bandwidth B     %.1f MB/s (application level)\n",
		report.RequiredBandwidth/1e6)
	fmt.Printf("  limit first applied at   %.2f s\n", report.FirstLimitAt.Seconds())

	d := report.Distribution()
	fmt.Println("\nWhere the time went (percent of total rank time):")
	fmt.Printf("  hidden async I/O (exploit)  %5.1f%%\n", d.AsyncWriteExploit)
	fmt.Printf("  visible I/O (waiting)       %5.1f%%\n", d.AsyncWriteLost)
	fmt.Printf("  compute (I/O free)          %5.1f%%\n", d.ComputeFree)

	// The throughput of phase j+1 follows the limit derived from phase j:
	// after the first phase, writes are paced at ~70 MB/s instead of
	// bursting at file-system speed.
	fmt.Println("\nPer-phase throughput of rank 0 (first phase bursts, later ones are paced):")
	for _, ph := range report.TPhases {
		if ph.Rank != 0 {
			continue
		}
		fmt.Printf("  phase %d: %8.1f MB/s over %.2f s\n",
			ph.Index, ph.Value/1e6, ph.End.Sub(ph.Start).Seconds())
	}
}
