// Command clustersim runs the paper's motivating multi-job scenario
// (Figs. 1 and 2): eight HACC-IO-like jobs share a cluster; only job 4
// performs asynchronous I/O, and the contention monitor optionally limits
// it to its measured required bandwidth.
//
//	clustersim              # run both policies and compare
//	clustersim -policy none # one policy only
package main

import (
	"flag"
	"fmt"
	"os"

	"iobehind/internal/cluster"
	"iobehind/internal/des"
	"iobehind/internal/report"
)

func main() {
	policy := flag.String("policy", "both", "limit policy: none, contention, both")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	switch *policy {
	case "none":
		res := run(cluster.NoLimit, *seed)
		printJobs("without limit", res)
	case "contention":
		res := run(cluster.LimitDuringContention, *seed)
		printJobs("with contention-only limit", res)
	case "both":
		base := run(cluster.NoLimit, *seed)
		lim := run(cluster.LimitDuringContention, *seed)
		compare(base, lim)
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
}

func run(policy cluster.LimitPolicy, seed int64) *cluster.Result {
	cfg := cluster.DefaultScenario(policy)
	cfg.Seed = seed
	res, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	return res
}

func printJobs(title string, res *cluster.Result) {
	t := report.NewTable(title, "job", "nodes", "async", "start", "end", "runtime")
	for _, j := range res.Jobs {
		t.AddRow(
			fmt.Sprintf("%d", j.Job),
			fmt.Sprintf("%d", j.Nodes),
			fmt.Sprintf("%v", j.Async),
			fmt.Sprintf("%.1f s", j.Started.Seconds()),
			fmt.Sprintf("%.1f s", j.Ended.Seconds()),
			report.Seconds(j.Runtime()),
		)
	}
	fmt.Print(t.Render())
	fmt.Println("bandwidth over time (write channel):")
	for i, s := range res.Bandwidth {
		fmt.Printf("  job %d  peak %-12s |%s|\n", i, report.Rate(s.Max()),
			report.Sparkline(s, 0, res.Makespan, 60))
	}
}

func compare(base, lim *cluster.Result) {
	t := report.NewTable("Fig. 1 — job runtimes", "job", "nodes", "async",
		"no limit", "limited", "delta")
	for i := range base.Jobs {
		b, l := base.Jobs[i], lim.Jobs[i]
		delta := 100 * (l.Runtime().Seconds() - b.Runtime().Seconds()) / b.Runtime().Seconds()
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", b.Nodes),
			fmt.Sprintf("%v", b.Async),
			report.Seconds(b.Runtime()),
			report.Seconds(l.Runtime()),
			fmt.Sprintf("%+.1f%%", delta),
		)
	}
	fmt.Print(t.Render())
	fmt.Printf("makespan %s -> %s; limit toggles %d\n",
		report.Seconds(des.Duration(base.Makespan)),
		report.Seconds(des.Duration(lim.Makespan)),
		lim.LimitToggles)
	horizon := base.Makespan
	if lim.Makespan > horizon {
		horizon = lim.Makespan
	}
	for _, v := range []struct {
		name string
		res  *cluster.Result
	}{{"no limit", base}, {"limited", lim}} {
		rows := make([]report.GanttRow, len(v.res.Jobs))
		for i, j := range v.res.Jobs {
			label := fmt.Sprintf("job %d", i)
			if j.Async {
				label += "*"
			}
			rows[i] = report.GanttRow{Label: label, Start: j.Started, End: j.Ended}
		}
		fmt.Print(report.Gantt("timeline ("+v.name+"; * = async)", rows, horizon, 60))
	}
	fmt.Println("\nFig. 2 — bandwidth distribution (write channel):")
	for _, v := range []struct {
		name string
		res  *cluster.Result
	}{{"no limit", base}, {"limited", lim}} {
		fmt.Printf("%s:\n", v.name)
		for i, s := range v.res.Bandwidth {
			fmt.Printf("  job %d  peak %-12s |%s|\n", i, report.Rate(s.Max()),
				report.Sparkline(s, 0, v.res.Makespan, 60))
		}
	}
}
