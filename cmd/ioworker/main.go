// Command ioworker executes sweep points for an iofabric coordinator: it
// pulls leases over TCP, resolves each serialized point ref through the
// same experiment registry the submitter enumerated (refusing to run on
// any cache-key skew), executes it through the runner, and streams the
// result back. Results are also written to the shared cache server (and
// an optional local disk tier), so a point computed by one worker is a
// cache hit for every other worker and for later local runs.
//
//	ioworker -coordinator 127.0.0.1:7777
//	ioworker -coordinator coord:7777 -cache-server http://coord:7778 -cache .ioworker-cache -j 4
//
// A worker survives coordinator restarts: connections are retried with
// jittered exponential backoff, and a result computed while disconnected
// is re-delivered after reconnect (the coordinator matches it by content
// address, so it even survives the lease having been re-dispatched).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"iobehind/internal/fabric"
	"iobehind/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() int {
	coordinator := flag.String("coordinator", "127.0.0.1:7777", "fabric coordinator TCP address")
	id := flag.String("id", "", "worker name in leases and logs (default: host PID tag)")
	executors := flag.Int("j", 0, "concurrent point executors (default 1)")
	cacheDir := flag.String("cache", "", "local disk cache tier (empty disables)")
	cacheServer := flag.String("cache-server", "", "shared cache server URL (iofabric's HTTP endpoint)")
	quiet := flag.Bool("q", false, "suppress per-point logs")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	opts := fabric.WorkerOptions{
		Coordinator: *coordinator,
		ID:          *id,
		Executors:   *executors,
		Logf:        logf,
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioworker:", err)
			return 1
		}
		opts.LocalCache = cache
	}
	if *cacheServer != "" {
		opts.RemoteCache = fabric.NewRemoteCache(*cacheServer)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "ioworker: %s pulling from %s\n", *id, *coordinator)
	if err := fabric.RunWorker(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ioworker:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "ioworker: shutting down")
	return 0
}
