package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestExperimentTokens(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("fig01.go", `package experiments
func Fig01Experiment(scale int) int { return 0 }
func helper() {}
`)
	write("figfaults.go", `package experiments
func FigFaultsExperiment(scale int) int { return 0 }

// A seeded variant of the base constructor must not demand its own row.
func FigFaultsExperimentSeeded(scale int, seed int64) int { return 0 }
`)
	// Test files and methods are out of scope.
	write("fig99_test.go", `package experiments
func Fig99Experiment(scale int) int { return 0 }
`)
	write("methods.go", `package experiments
type T struct{}
func (T) FigMethodExperiment() {}
`)

	tokens, err := experimentTokens(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Fig01", "FigFaults"}
	if !reflect.DeepEqual(tokens, want) {
		t.Fatalf("tokens = %v, want %v", tokens, want)
	}
}

func TestMissingEntries(t *testing.T) {
	doc := "| 1 | `experiments.Fig01` | ... |\n| faults | `experiments.FigFaults` | ... |\n"
	if got := missingEntries(doc, []string{"Fig01", "FigFaults"}); len(got) != 0 {
		t.Errorf("documented tokens flagged: %v", got)
	}
	if got := missingEntries(doc, []string{"Fig01", "FigTrace"}); !reflect.DeepEqual(got, []string{"FigTrace"}) {
		t.Errorf("missing = %v, want [FigTrace]", got)
	}
}

// TestRepoIsClean runs the real check over this repository: every
// constructor in internal/experiments must have its EXPERIMENTS.md row.
// Removing a row (the CI failure mode the checker exists for) makes the
// token set non-empty.
func TestRepoIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := experimentTokens(filepath.Join(root, "internal", "experiments"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join(root, "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if missing := missingEntries(string(doc), tokens); len(missing) != 0 {
		t.Errorf("undocumented experiments: %v", missing)
	}
}
