// Command iodocscheck keeps EXPERIMENTS.md honest: every figure
// experiment in internal/experiments must have a row in the figure↔code
// table. It scans the package for exported constructors named
// Fig<Token>Experiment (the registry entries behind `iosweep -figs`) and
// fails when EXPERIMENTS.md never mentions `experiments.Fig<Token>` — the
// form the table's code column uses.
//
//	go run ./cmd/iodocscheck          # from anywhere inside the module
//	make docs-check
//
// Findings print to stdout, one per line, and the exit status is non-zero
// when any constructor is undocumented. The checker is stdlib-only and
// purely syntactic — it parses declarations, not doc prose — so it cannot
// tell whether the documentation is *good*, only that it exists.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	tokens, err := experimentTokens(filepath.Join(root, "internal", "experiments"))
	if err != nil {
		fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join(root, "EXPERIMENTS.md"))
	if err != nil {
		fatal(err)
	}
	missing := missingEntries(string(doc), tokens)
	for _, tok := range missing {
		fmt.Printf("EXPERIMENTS.md: no entry for experiments.%s (constructor %sExperiment)\n", tok, tok)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "iodocscheck: %d undocumented experiment(s)\n", len(missing))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "iodocscheck: %d experiments, all documented\n", len(tokens))
}

// experimentTokens parses every non-test Go file in dir and returns the
// Fig tokens of exported experiment constructors: a declaration
// `func FigXxxExperiment(...)` yields "FigXxx". Names merely *containing*
// Experiment (FigFaultsExperimentSeeded) are variants of a base
// constructor, not registry entries, and are skipped.
func experimentTokens(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			tok, ok := strings.CutSuffix(fd.Name.Name, "Experiment")
			if !ok || !strings.HasPrefix(tok, "Fig") {
				continue
			}
			seen[tok] = true
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("no Fig*Experiment constructors found in %s", dir)
	}
	tokens := make([]string, 0, len(seen))
	for tok := range seen {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	return tokens, nil
}

// missingEntries returns the tokens with no `experiments.<token>` mention
// in doc, preserving input order.
func missingEntries(doc string, tokens []string) []string {
	var missing []string
	for _, tok := range tokens {
		if !strings.Contains(doc, "experiments."+tok) {
			missing = append(missing, tok)
		}
	}
	return missing
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iodocscheck:", err)
	os.Exit(1)
}
