// Command iolint runs the project's determinism and cache-key analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// findings.
//
// Usage:
//
//	go run ./cmd/iolint ./...
//	go run ./cmd/iolint -json ./internal/... ./cmd/...
//	go run ./cmd/iolint -why 'tmio.(*TCPSink).Emit' ./...
//	go run ./cmd/iolint -list
//
// Patterns default to ./internal/... ./cmd/... . Findings print as
// "file:line:col: [rule] message" with paths relative to the module
// root; reachability findings carry the full call chain from a
// simulation entry point to the sink. With -json the findings print as a
// JSON array with stable field names (file, line, col, rule, message,
// chain). -why <symbol> explains why a function is (or is not)
// considered sim-reachable, printing the call chain that taints it.
//
// Suppress an intentional finding with a comment on the offending line,
// the line above it, or the line above the statement containing it:
//
//	//iolint:ignore <rule> <reason>
//
// The reason is mandatory; malformed suppressions are themselves
// reported. Only non-test files are analyzed. A timing line prints to
// stderr after every run — the whole-module analysis is budgeted to stay
// under 10s (make lint enforces the habit of watching it).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iobehind/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "print findings as a JSON array (stable field names, sorted)")
	why := flag.String("why", "", "explain why `symbol` is sim-reachable (e.g. 'tmio.(*TCPSink).Emit') and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: iolint [-list] [-json] [-why symbol] [patterns...]\n\n"+
			"Patterns are package directories or ./... globs relative to the module\n"+
			"root (default: ./internal/... ./cmd/...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		return fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	t0 := time.Now()
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		return fatal(err)
	}
	tLoad := time.Since(t0)
	t1 := time.Now()
	prog := lint.NewProgram(pkgs)
	tGraph := time.Since(t1)

	if *why != "" {
		explain(prog, *why)
		return 0
	}

	t2 := time.Now()
	diags := prog.Diagnostics()
	tRules := time.Since(t2)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		out, err := lint.FormatJSON(diags)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	nodes, edges := prog.Stats()
	fmt.Fprintf(os.Stderr, "iolint: %d packages, call graph %d nodes / %d edges; load %.2fs, graph %.2fs, rules %.2fs (budget 10s)\n",
		len(pkgs), nodes, edges, tLoad.Seconds(), tGraph.Seconds(), tRules.Seconds())
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// explain prints every function matching query and, for sim-reachable
// ones, the call chain from a simulation entry point.
func explain(prog *lint.Program, query string) {
	results := prog.Why(query)
	if len(results) == 0 {
		fmt.Printf("%s: no function with that symbol in the loaded packages\n", query)
		fmt.Println("(symbols look like 'pfs.recompute', 'des.(*Engine).Run', or a full-path suffix)")
		return
	}
	for _, r := range results {
		switch {
		case r.Entry:
			fmt.Printf("%s: ENTRY POINT — declared in simulation package %s;\n"+
				"  every function it can call, through any number of packages, is sim-reachable\n",
				r.Display, r.Package)
		case r.Reachable:
			fmt.Printf("%s: sim-reachable via\n  %s\n", r.Display, strings.Join(r.Chain, " → "))
		case r.Exempt:
			fmt.Printf("%s: NOT sim-reachable — %s is an exempt package "+
				"(runner/gateway/fabric/cmd run on real machines around the simulation)\n",
				r.Display, r.Package)
		default:
			fmt.Printf("%s: NOT sim-reachable — no call path from any simulation entry point\n", r.Display)
		}
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("iolint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "iolint:", err)
	return 1
}
