// Command iolint runs the project's determinism and cache-key analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// findings.
//
// Usage:
//
//	go run ./cmd/iolint ./...
//	go run ./cmd/iolint ./internal/... ./cmd/...
//	go run ./cmd/iolint -list
//
// Patterns default to ./internal/... ./cmd/... . Findings print as
// "file:line:col: [rule] message" with paths relative to the module root.
// Suppress an intentional finding with a comment on the offending line or
// the line above it:
//
//	//iolint:ignore <rule> <reason>
//
// The reason is mandatory; malformed suppressions are themselves
// reported. Only non-test files are analyzed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iobehind/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: iolint [-list] [patterns...]\n\n"+
			"Patterns are package directories or ./... globs relative to the module\n"+
			"root (default: ./internal/... ./cmd/...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	pkgs, err := lint.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	diags := lint.RunAll(pkgs)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("iolint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iolint:", err)
	os.Exit(1)
}
