// Command haccio runs the modified HACC-IO benchmark (the paper's Fig. 12
// structure) on the simulated stack and prints the traced report:
//
//	haccio -ranks 96 -loops 10 -strategy direct -tol 1.1
//	haccio -ranks 9216 -strategy none -json report.json
package main

import (
	"flag"
	"fmt"
	"os"

	"iobehind"
	"iobehind/internal/report"
)

func main() {
	ranks := flag.Int("ranks", 96, "MPI ranks")
	loops := flag.Int("loops", 10, "compute/write/read/verify loops")
	particles := flag.Int64("particles", 5_500_000, "particles per rank (38 bytes each)")
	strategy := flag.String("strategy", "direct", "limiting strategy: none, direct, up-only, adaptive")
	tol := flag.Float64("tol", 1.1, "strategy tolerance")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonPath := flag.String("json", "", "write the full report as JSON to this file")
	tracePath := flag.String("chrome", "", "write a Chrome trace (Perfetto-loadable) to this file")
	perRank := flag.Bool("perrank", false, "print the per-rank breakdown")
	flag.Parse()

	strat, err := parseStrategy(*strategy, *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccio:", err)
		os.Exit(2)
	}

	sim := iobehind.NewSim(iobehind.Options{
		Ranks:    *ranks,
		Seed:     *seed,
		Strategy: strat,
	})
	rep, err := sim.Run(iobehind.HaccMain(sim.IO, iobehind.HaccConfig{
		Loops:            *loops,
		ParticlesPerRank: *particles,
	}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccio:", err)
		os.Exit(1)
	}
	printReport(rep)
	if *perRank {
		printRanks(sim)
	}
	if *jsonPath != "" {
		writeJSON(rep, *jsonPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "haccio:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sim.Tracer.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "haccio:", err)
			os.Exit(1)
		}
		fmt.Println("chrome trace written to", *tracePath)
	}
}

func parseStrategy(name string, tol float64) (iobehind.StrategyConfig, error) {
	switch name {
	case "none":
		return iobehind.StrategyConfig{}, nil
	case "direct":
		return iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: tol}, nil
	case "up-only", "uponly":
		return iobehind.StrategyConfig{Strategy: iobehind.UpOnly, Tol: tol}, nil
	case "adaptive":
		return iobehind.StrategyConfig{Strategy: iobehind.Adaptive, Tol: tol}, nil
	default:
		return iobehind.StrategyConfig{}, fmt.Errorf("unknown strategy %q", name)
	}
}

func printReport(rep *iobehind.Report) {
	d := rep.Distribution()
	t := report.NewTable(fmt.Sprintf("traced run: %d ranks, strategy %s", rep.Ranks, rep.Strategy.Label()),
		"metric", "value")
	t.AddRow("runtime", report.Seconds(rep.Runtime))
	t.AddRow("app time", report.Seconds(rep.AppTime))
	t.AddRow("required bandwidth B", report.Rate(rep.RequiredBandwidth))
	t.AddRow("tracing overhead", report.Pct(rep.OverheadShare()))
	t.AddRow("visible I/O", report.Pct(d.VisibleIO()))
	t.AddRow("hidden I/O (exploit)", report.Pct(d.ExploitTotal()))
	t.AddRow("compute (I/O free)", report.Pct(d.ComputeFree))
	t.AddRow("async ops", fmt.Sprintf("%d", rep.AsyncOps))
	t.AddRow("sync ops", fmt.Sprintf("%d", rep.SyncOps))
	if rep.FirstLimitAt != 0 {
		t.AddRow("limit first applied", fmt.Sprintf("%.2f s", rep.FirstLimitAt.Seconds()))
	}
	fmt.Print(t.Render())
}

func printRanks(sim *iobehind.Sim) {
	t := report.NewTable("per-rank breakdown",
		"rank", "runtime", "phases", "last B", "wait", "async bytes")
	for _, st := range sim.Tracer.RankBreakdown() {
		t.AddRow(
			fmt.Sprintf("%d", st.Rank),
			report.Seconds(st.Runtime),
			fmt.Sprintf("%d", st.Phases),
			report.Rate(st.LastB),
			report.Seconds(st.WaitTime),
			fmt.Sprintf("%d", st.AsyncBytes),
		)
	}
	fmt.Print(t.Render())
}

func writeJSON(rep *iobehind.Report, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haccio:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "haccio:", err)
		os.Exit(1)
	}
	fmt.Println("report written to", path)
}
