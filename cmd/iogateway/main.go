// Command iogateway runs the live telemetry gateway: a long-running
// collector that accepts TMIO stream connections (JSON lines or binary
// frames over TCP, sniffed per connection — see docs/STREAM_FORMAT.md),
// aggregates each application's B/B_L/T series online, and serves them —
// plus FTIO next-burst predictions and Prometheus metrics — over HTTP:
//
//	iogateway -listen :9007 -http :9008
//
// For long-lived deployments, -retention-window N bounds each app's
// retained history to the last N virtual seconds of activity (older
// regions are compacted into an exact running max plus a coarsened tail
// of -retention-tail points), so per-app memory is bounded instead of
// growing for the life of the run.
//
// Traced applications point tmio.DialSink at the -listen address;
// schedulers and dashboards query the -http address:
//
//	GET /healthz              liveness
//	GET /metrics              Prometheus text exposition
//	GET /apps                 applications seen so far
//	GET /apps/{id}/series     online B/B_L/T step series
//	GET /apps/{id}/predict    FTIO next-burst forecast
//
// With -smoke the command instead runs a self-contained end-to-end check
// on ephemeral ports — gateway up, one traced simulation streamed in per
// protocol (JSON lines and binary frames), HTTP surface probed — and
// exits 0/1. Used by `make gateway-smoke`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iobehind"
	"iobehind/internal/des"
	"iobehind/internal/gateway"
	"iobehind/internal/tmio"
)

func main() {
	listen := flag.String("listen", ":9007", "TCP address for TMIO stream ingest")
	httpAddr := flag.String("http", ":9008", "HTTP address for queries and metrics")
	queue := flag.Int("queue", 1024, "per-connection record queue depth")
	retention := flag.Float64("retention-window", 0,
		"per-app history bound in virtual seconds: regions older than this behind an app's activity frontier are compacted into a fixed summary (0 = retain everything)")
	retentionTail := flag.Int("retention-tail", 64,
		"coarsened summary points kept per compacted sweep")
	smoke := flag.Bool("smoke", false, "run a self-contained end-to-end check and exit")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*queue); err != nil {
			fmt.Fprintln(os.Stderr, "iogateway smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("iogateway smoke: OK")
		return
	}

	logger := log.New(os.Stderr, "iogateway: ", log.LstdFlags)
	srv := gateway.New(gateway.Config{
		QueueDepth:      *queue,
		RetentionWindow: des.DurationOf(*retention),
		RetentionTail:   *retentionTail,
		Logf:            logger.Printf,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	web := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}

	errs := make(chan error, 2)
	go func() { errs <- srv.Serve(ln) }()
	go func() { errs <- web.ListenAndServe() }()
	logger.Printf("ingest on %s, HTTP on %s", ln.Addr(), *httpAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("%v: draining", s)
	case err := <-errs:
		logger.Printf("server failed: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	web.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		logger.Fatal(err)
	}
	st := srv.Stats()
	logger.Printf("done: %d conns, %d records ingested, %d dropped",
		st.ConnsTotal, st.Ingested, st.Dropped)
}

// runSmoke exercises the whole pipeline in-process: gateway on ephemeral
// ports, one traced phased simulation streamed in per wire protocol
// (JSON lines and binary frames, so the sniffing path and both read
// loops are covered end to end), and the HTTP surface queried for the
// resulting series and forecast.
func runSmoke(queue int) error {
	srv := gateway.New(gateway.Config{QueueDepth: queue})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	web := &http.Server{Handler: srv.Handler()}
	webLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go web.Serve(webLn)
	base := "http://" + webLn.Addr().String()

	// One periodic checkpointing app per wire protocol, streamed live.
	// A slow file system gives the write bursts real width (~250 ms in
	// each ~2 s period), so the binned FTIO signal sees them.
	streamApp := func(appID string, binary bool) error {
		sim := iobehind.NewSim(iobehind.Options{
			Ranks: 4,
			FS:    &iobehind.FSConfig{WriteCapacity: 256e6, ReadCapacity: 256e6},
		})
		sink, err := tmio.DialSinkWith(ln.Addr().String(), tmio.SinkOptions{AppID: appID, Binary: binary})
		if err != nil {
			return err
		}
		sim.Tracer.SetSink(sink)
		if _, err := sim.Run(iobehind.PhasedMain(sim.IO, iobehind.PhasedConfig{
			Phases:        10,
			BytesPerPhase: 16 << 20,
			Compute:       2 * iobehind.Second,
		})); err != nil {
			return err
		}
		if err := sink.Close(); err != nil {
			return fmt.Errorf("sink close (%s): %w", appID, err)
		}
		return nil
	}
	if err := streamApp("smoke", false); err != nil {
		return err
	}
	if err := streamApp("smoke-bin", true); err != nil {
		return err
	}

	// Wait for the ingest side to drain both connections.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, ok := srv.AppInfo("smoke")
		binInfo, binOK := srv.AppInfo("smoke-bin")
		if ok && binOK && info.Records > 0 && binInfo.Records == info.Records && srv.Stats().ConnsActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("records never arrived: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body), nil
	}
	if _, err := get("/healthz"); err != nil {
		return err
	}
	if _, err := get("/metrics"); err != nil {
		return err
	}
	body, err := get("/apps/smoke/series")
	if err != nil {
		return err
	}
	var series struct {
		B []struct{ T, V float64 } `json:"b"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		return fmt.Errorf("series JSON: %w", err)
	}
	if len(series.B) == 0 {
		return fmt.Errorf("empty B series: %s", body)
	}
	// The binary-protocol run is the same deterministic simulation, so
	// its online series must match the JSON-protocol run point for point.
	binBody, err := get("/apps/smoke-bin/series")
	if err != nil {
		return err
	}
	var binSeries struct {
		B []struct{ T, V float64 } `json:"b"`
	}
	if err := json.Unmarshal([]byte(binBody), &binSeries); err != nil {
		return fmt.Errorf("binary series JSON: %w", err)
	}
	if len(binSeries.B) != len(series.B) {
		return fmt.Errorf("binary B series has %d steps, JSON has %d", len(binSeries.B), len(series.B))
	}
	for i := range series.B {
		if binSeries.B[i] != series.B[i] {
			return fmt.Errorf("binary B series diverges at step %d: %+v vs %+v", i, binSeries.B[i], series.B[i])
		}
	}
	body, err = get("/apps/smoke/predict")
	if err != nil {
		return err
	}
	var pred gateway.PredictJSON
	if err := json.Unmarshal([]byte(body), &pred); err != nil {
		return fmt.Errorf("predict JSON: %w", err)
	}
	if !pred.OK {
		return fmt.Errorf("no forecast for a periodic app: %s", body)
	}
	fmt.Printf("  app %q: %d B-series steps, period %.2f s (confidence %.2f)\n",
		"smoke", len(series.B), pred.PeriodSec, pred.Confidence)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	web.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-served
}
