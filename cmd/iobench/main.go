// Command iobench regenerates the paper's figures as text tables and
// series. Each figure of the evaluation section maps to one experiment:
//
//	iobench -fig 1          # Figs. 1+2: cluster scenario
//	iobench -fig 5          # Figs. 5+6: HACC-IO runtime & overhead sweep
//	iobench -fig 7          # WaComM++ distribution sweep
//	iobench -fig 8 -scale paper
//	iobench -fig all        # everything
//	iobench -fig all -j 8 -cache .iosweep-cache
//	iobench -fig 8 -cpuprofile cpu.out -memprofile mem.out
//
// -scale quick (default) shrinks the runs to seconds; -scale paper uses
// the paper's configurations (up to 9216 ranks; the largest runs take
// minutes).
//
// Each figure decomposes into independent simulation points; -j fans them
// across a worker pool and -cache memoizes completed points on disk, so a
// re-run recomputes only points whose configuration changed. Output is
// byte-identical at any -j. Figures still print one after another in
// request order; to fan *all* figures' points into one flat sweep, use
// cmd/iosweep instead.
//
// -cpuprofile and -memprofile write runtime/pprof profiles covering the
// requested figures; inspect them with `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/profiling"
	"iobehind/internal/runner"
)

// renderer is any experiment result that can print itself.
type renderer interface{ Render() string }

// figures maps figure ids to their runners. Figures sharing one experiment
// (1+2, 5+6) appear under both ids.
var figures = map[string]func(context.Context, experiments.Scale, *runner.Runner) (renderer, error){
	"1":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig01With(ctx, s, r) },
	"2":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig01With(ctx, s, r) },
	"3":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig03With(ctx, s, r) },
	"4":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig04With(ctx, s, r) },
	"5":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig05With(ctx, s, r) },
	"6":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig05With(ctx, s, r) },
	"7":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig07With(ctx, s, r) },
	"8":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig08With(ctx, s, r) },
	"9":  func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig09With(ctx, s, r) },
	"10": func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig10With(ctx, s, r) },
	"11": func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig11With(ctx, s, r) },
	"13": func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig13With(ctx, s, r) },
	"14": func(ctx context.Context, s experiments.Scale, r *runner.Runner) (renderer, error) { return experiments.Fig14With(ctx, s, r) },
}

// order lists each distinct experiment once for -fig all.
var order = []string{"1", "3", "4", "5", "7", "8", "9", "10", "11", "13", "14"}

func main() {
	os.Exit(run())
}

// run is main with an exit code instead of os.Exit calls, so deferred
// cleanup — in particular flushing pprof profiles — runs on every path.
func run() int {
	fig := flag.String("fig", "all", "figure to reproduce: 1,2,3,4,5,6,7,8,9,10,11,13,14 or 'all'")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	outDir := flag.String("out", "", "also write each figure's output to <out>/fig<N>.txt")
	workers := flag.Int("j", 1, "worker pool size per figure (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "cache directory for completed points (empty disables caching)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iobench:", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "iobench:", err)
		}
	}()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "iobench: unknown scale %q (want quick or paper)\n", *scaleFlag)
		return 2
	}

	var ids []string
	if *fig == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figures[id]; !ok {
				fmt.Fprintf(os.Stderr, "iobench: unknown figure %q\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}

	opts := runner.Options{Workers: *workers}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iobench:", err)
			return 1
		}
		opts.Cache = cache
	}
	r := runner.New(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iobench:", err)
			return 1
		}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := figures[id](ctx, scale, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iobench: figure %s: %v\n", id, err)
			return 1
		}
		header := fmt.Sprintf("### Figure %s (%s scale, %v wall time)\n\n", id, scale,
			time.Since(start).Round(time.Millisecond))
		body := res.Render()
		fmt.Print(header)
		fmt.Println(body)
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig"+id+".txt")
			if err := os.WriteFile(path, []byte(header+body+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "iobench:", err)
				return 1
			}
		}
	}
	return 0
}
