// Command iobench regenerates the paper's figures as text tables and
// series. Each figure of the evaluation section maps to one experiment:
//
//	iobench -fig 1          # Figs. 1+2: cluster scenario
//	iobench -fig 5          # Figs. 5+6: HACC-IO runtime & overhead sweep
//	iobench -fig 7          # WaComM++ distribution sweep
//	iobench -fig 8 -scale paper
//	iobench -fig all        # everything
//
// -scale quick (default) shrinks the runs to seconds; -scale paper uses
// the paper's configurations (up to 9216 ranks; the largest runs take
// minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iobehind/internal/experiments"
)

// renderer is any experiment result that can print itself.
type renderer interface{ Render() string }

// figures maps figure ids to their runners. Figures sharing one experiment
// (1+2, 5+6) appear under both ids.
var figures = map[string]func(experiments.Scale) (renderer, error){
	"1":  func(s experiments.Scale) (renderer, error) { return experiments.Fig01(s) },
	"3":  func(s experiments.Scale) (renderer, error) { return experiments.Fig03(s) },
	"4":  func(s experiments.Scale) (renderer, error) { return experiments.Fig04(s) },
	"2":  func(s experiments.Scale) (renderer, error) { return experiments.Fig01(s) },
	"5":  func(s experiments.Scale) (renderer, error) { return experiments.Fig05(s) },
	"6":  func(s experiments.Scale) (renderer, error) { return experiments.Fig05(s) },
	"7":  func(s experiments.Scale) (renderer, error) { return experiments.Fig07(s) },
	"8":  func(s experiments.Scale) (renderer, error) { return experiments.Fig08(s) },
	"9":  func(s experiments.Scale) (renderer, error) { return experiments.Fig09(s) },
	"10": func(s experiments.Scale) (renderer, error) { return experiments.Fig10(s) },
	"11": func(s experiments.Scale) (renderer, error) { return experiments.Fig11(s) },
	"13": func(s experiments.Scale) (renderer, error) { return experiments.Fig13(s) },
	"14": func(s experiments.Scale) (renderer, error) { return experiments.Fig14(s) },
}

// order lists each distinct experiment once for -fig all.
var order = []string{"1", "3", "4", "5", "7", "8", "9", "10", "11", "13", "14"}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 1,2,3,4,5,6,7,8,9,10,11,13,14 or 'all'")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	outDir := flag.String("out", "", "also write each figure's output to <out>/fig<N>.txt")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "iobench: unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	var ids []string
	if *fig == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figures[id]; !ok {
				fmt.Fprintf(os.Stderr, "iobench: unknown figure %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iobench:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := figures[id](scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iobench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		header := fmt.Sprintf("### Figure %s (%s scale, %v wall time)\n\n", id, scale,
			time.Since(start).Round(time.Millisecond))
		body := res.Render()
		fmt.Print(header)
		fmt.Println(body)
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig"+id+".txt")
			if err := os.WriteFile(path, []byte(header+body+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "iobench:", err)
				os.Exit(1)
			}
		}
	}
}
