// Command ioreport renders a TMIO JSON report (written by Report.WriteJSON
// or `haccio -json`) back into tables and series — the offline analysis
// path, like the paper's plotting scripts consuming TMIO's result files.
//
//	haccio -ranks 96 -json run.json
//	ioreport run.json
//	ioreport -replay -j 4 run.json   # what-if replay, strategies in parallel
//
// With -trace, the argument is instead an I/O trace file in the format of
// docs/TRACE_FORMAT.md (written by `iosweep -emit-trace` or converted from
// a real application trace); ioreport prints its per-rank and per-op
// summary. Replay such a file with `iosweep -trace`.
//
//	iosweep -emit-trace hacc.trace -workload hacc
//	ioreport -trace hacc.trace
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"iobehind/internal/des"
	"iobehind/internal/region"
	"iobehind/internal/report"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
	"iobehind/internal/trace"
)

// reportJSON mirrors the WriteJSON payload.
type reportJSON struct {
	Ranks    int `json:"ranks"`
	Strategy struct {
		Strategy int     `json:"Strategy"`
		Tol      float64 `json:"Tol"`
	} `json:"strategy"`
	Runtime           int64       `json:"runtime"`
	AppTime           int64       `json:"app_time"`
	PeriOverhead      int64       `json:"peri_overhead"`
	PostOverhead      int64       `json:"post_overhead"`
	RequiredBandwidth float64     `json:"required_bandwidth"`
	FirstLimitAt      int64       `json:"first_limit_at"`
	SyncOps           int         `json:"sync_ops"`
	AsyncOps          int         `json:"async_ops"`
	TotalBytes        [2]int64    `json:"total_bytes"`
	Distribution      distJSON    `json:"distribution"`
	B                 seriesJSON  `json:"b_series"`
	T                 seriesJSON  `json:"t_series"`
	BL                seriesJSON  `json:"bl_series"`
	Phases            []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Rank  int     `json:"rank"`
	Index int     `json:"index"`
	Ts    float64 `json:"ts"`
	Te    float64 `json:"te"`
	B     float64 `json:"b"`
}

type distJSON struct {
	SyncWrite         float64 `json:"sync_write"`
	SyncRead          float64 `json:"sync_read"`
	AsyncWriteLost    float64 `json:"async_write_lost"`
	AsyncReadLost     float64 `json:"async_read_lost"`
	AsyncWriteExploit float64 `json:"async_write_exploit"`
	AsyncReadExploit  float64 `json:"async_read_exploit"`
	OverheadPeri      float64 `json:"overhead_peri"`
	OverheadPost      float64 `json:"overhead_post"`
	ComputeFree       float64 `json:"compute_free"`
}

type seriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

func main() {
	replay := flag.Bool("replay", false,
		"replay all limiting strategies over the recorded phases (what-if analysis)")
	workers := flag.Int("j", 1, "worker pool size for -replay (0 = GOMAXPROCS)")
	traceFile := flag.Bool("trace", false,
		"the argument is an I/O trace file (docs/TRACE_FORMAT.md); print its summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ioreport [-replay] <report.json>\n       ioreport -trace <file.trace>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioreport:", err)
		os.Exit(1)
	}
	if *traceFile {
		if err := summarizeTrace(data); err != nil {
			fmt.Fprintln(os.Stderr, "ioreport:", err)
			os.Exit(1)
		}
		return
	}
	var rep reportJSON
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "ioreport: parse:", err)
		os.Exit(1)
	}

	secs := func(ns int64) float64 { return float64(ns) / 1e9 }
	t := report.NewTable(fmt.Sprintf("TMIO report — %d ranks", rep.Ranks), "metric", "value")
	t.AddRow("runtime", fmt.Sprintf("%.2f s", secs(rep.Runtime)))
	t.AddRow("app time", fmt.Sprintf("%.2f s", secs(rep.AppTime)))
	t.AddRow("required bandwidth B", report.Rate(rep.RequiredBandwidth))
	t.AddRow("peri overhead", fmt.Sprintf("%.3f s", secs(rep.PeriOverhead)))
	t.AddRow("post overhead", fmt.Sprintf("%.3f s", secs(rep.PostOverhead)))
	t.AddRow("async / sync ops", fmt.Sprintf("%d / %d", rep.AsyncOps, rep.SyncOps))
	t.AddRow("bytes written / read", fmt.Sprintf("%d / %d", rep.TotalBytes[0], rep.TotalBytes[1]))
	if rep.FirstLimitAt > 0 {
		t.AddRow("limit first applied", fmt.Sprintf("%.2f s", secs(rep.FirstLimitAt)))
	}
	fmt.Print(t.Render())

	d := rep.Distribution
	dt := report.NewTable("time distribution (percent of total rank time)", "category", "share")
	dt.AddRow("sync write", report.Pct(d.SyncWrite))
	dt.AddRow("sync read", report.Pct(d.SyncRead))
	dt.AddRow("async write lost", report.Pct(d.AsyncWriteLost))
	dt.AddRow("async read lost", report.Pct(d.AsyncReadLost))
	dt.AddRow("async write exploit", report.Pct(d.AsyncWriteExploit))
	dt.AddRow("async read exploit", report.Pct(d.AsyncReadExploit))
	dt.AddRow("overhead (peri)", report.Pct(d.OverheadPeri))
	dt.AddRow("overhead (post)", report.Pct(d.OverheadPost))
	dt.AddRow("compute (I/O free)", report.Pct(d.ComputeFree))
	fmt.Print(dt.Render())

	for _, s := range []seriesJSON{rep.T, rep.B, rep.BL} {
		if len(s.Points) == 0 {
			continue
		}
		fmt.Printf("%-4s %d points, peak %s |%s|\n",
			s.Name, len(s.Points), report.Rate(peak(s)), spark(s, 60))
	}

	if *replay {
		if err := replayStrategies(rep.Phases, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "ioreport:", err)
			os.Exit(1)
		}
	}
}

// summarizeTrace parses raw as a JSON-lines I/O trace and prints its
// per-rank and per-op summary — the "inspect" step between emitting a
// trace and replaying it.
func summarizeTrace(raw []byte) error {
	tr, err := trace.Parse(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	head := report.NewTable(fmt.Sprintf("I/O trace — app %q (format v%d)", tr.App, tr.Version),
		"metric", "value")
	head.AddRow("ranks", fmt.Sprintf("%d (%d per node)", tr.Ranks, tr.RanksPerNode))
	head.AddRow("operations", fmt.Sprintf("%d", tr.Ops()))
	head.AddRow("clock", tr.Clock)
	if tr.Skipped > 0 {
		head.AddRow("skipped unknown ops", fmt.Sprintf("%d", tr.Skipped))
	}
	fmt.Print(head.Render())

	perRank := report.NewTable("per rank", "rank", "ops", "files", "written", "read", "async", "span")
	opCounts := map[string]int{}
	for rank, recs := range tr.PerRank {
		var written, read int64
		var async, files int
		var first, last int64
		for i, rec := range recs {
			if i == 0 {
				first = rec.T
			}
			if rec.T > last {
				last = rec.T
			}
			opCounts[rec.Op]++
			switch rec.Op {
			case trace.OpOpen:
				files++
			case trace.OpWriteAt, trace.OpWriteAtAll:
				written += rec.N
			case trace.OpReadAt, trace.OpReadAtAll:
				read += rec.N
			case trace.OpIwriteAt:
				written += rec.N
				async++
			case trace.OpIreadAt:
				read += rec.N
				async++
			}
		}
		perRank.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", len(recs)),
			fmt.Sprintf("%d", files), report.Bytes(written), report.Bytes(read),
			fmt.Sprintf("%d", async), report.Seconds(des.Duration(last-first)))
	}
	fmt.Print(perRank.Render())

	kinds := make([]string, 0, len(opCounts))
	for op := range opCounts {
		kinds = append(kinds, op)
	}
	sort.Strings(kinds)
	ops := report.NewTable("operations by kind", "op", "count")
	for _, op := range kinds {
		ops.AddRow(op, fmt.Sprintf("%d", opCounts[op]))
	}
	fmt.Print(ops.Render())
	return nil
}

// replayStrategies runs the what-if analysis: what would each strategy
// have done on the recorded required bandwidths? Each strategy's replay
// is an independent pass over the same read-only phase record, so they
// fan across the worker pool; the table rows keep strategy order.
func replayStrategies(raw []phaseJSON, workers int) error {
	if len(raw) == 0 {
		fmt.Println("\nno recorded phases: cannot replay (report was written by an older version?)")
		return nil
	}
	phases := make([]region.Phase, 0, len(raw))
	for _, ph := range raw {
		phases = append(phases, region.Phase{
			Rank:  ph.Rank,
			Index: ph.Index,
			Start: des.Time(des.DurationOf(ph.Ts)),
			End:   des.Time(des.DurationOf(ph.Te)),
			Value: ph.B,
		})
	}
	strategies := []tmio.StrategyConfig{
		{Strategy: tmio.Direct, Tol: 1.1},
		{Strategy: tmio.Direct, Tol: 2},
		{Strategy: tmio.UpOnly, Tol: 1.1},
		{Strategy: tmio.Adaptive, Tol: 1.1},
		{Strategy: tmio.Frequent, Tol: 1.1},
	}
	points := make([]runner.Point, len(strategies))
	for i, s := range strategies {
		s := s
		points[i] = runner.Point{
			Key: "replay/" + s.Label(),
			Run: func(context.Context) (any, error) { return tmio.Replay(phases, s), nil },
		}
	}
	results, err := runner.New(runner.Options{Workers: workers}).Run(context.Background(), points)
	if err != nil {
		return err
	}
	t := report.NewTable("strategy replay over the recorded phases (projected)",
		"strategy", "wait share", "exploit share")
	for _, pr := range results {
		if pr.Err != nil {
			return pr.Err
		}
		res := pr.Value.(*tmio.ReplayResult)
		t.AddRow(res.Strategy.Label(),
			report.Pct(100*res.WaitShare()),
			report.Pct(100*res.ExploitShare()))
	}
	fmt.Println()
	fmt.Print(t.Render())
	return nil
}

func peak(s seriesJSON) float64 {
	var max float64
	for _, p := range s.Points {
		if p[1] > max {
			max = p[1]
		}
	}
	return max
}

// spark renders the JSON series as a sparkline by step-sampling it.
func spark(s seriesJSON, width int) string {
	if len(s.Points) == 0 {
		return ""
	}
	max := peak(s)
	if max <= 0 {
		return strings.Repeat("▁", width)
	}
	end := s.Points[len(s.Points)-1][0]
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for i := 0; i < width; i++ {
		at := end * float64(i) / float64(width)
		v := 0.0
		for _, p := range s.Points {
			if p[0] > at {
				break
			}
			v = p[1]
		}
		idx := int(v / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
