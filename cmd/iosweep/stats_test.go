package main

import (
	"testing"

	"iobehind/internal/runner"
)

// TestCacheStatsLineFormat pins the exact shape of the cache summary
// line: cache effectiveness — local or via the fabric — must be visible
// (and machine-parsable) without a debugger.
func TestCacheStatsLineFormat(t *testing.T) {
	got := cacheStatsLine(".iosweep-cache", runner.CacheStats{Hits: 3, Misses: 2, Writes: 2, Errors: 1})
	want := "iosweep: cache .iosweep-cache: 3 hits, 2 misses, 2 writes, 1 errors"
	if got != want {
		t.Fatalf("cacheStatsLine = %q, want %q", got, want)
	}

	got = cacheStatsLine("http://127.0.0.1:7778", runner.CacheStats{})
	want = "iosweep: cache http://127.0.0.1:7778: 0 hits, 0 misses, 0 writes, 0 errors"
	if got != want {
		t.Fatalf("cacheStatsLine = %q, want %q", got, want)
	}
}
