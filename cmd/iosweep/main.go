// Command iosweep regenerates the paper's figures as one parallel sweep:
// every requested figure decomposes into independent (strategy × rank
// count) simulation points, iosweep fans all of them across a worker
// pool, and the figures assemble and print in request order — byte-
// identical to the serial path, only faster.
//
//	iosweep                                      # all figures, quick scale
//	iosweep -figs 1,5,8 -scale quick -j 8        # selected figures, 8 workers
//	iosweep -figs all -scale paper -cache .iosweep-cache
//	iosweep -figs 5 -cpuprofile cpu.out -memprofile mem.out
//	iosweep -emit-trace hacc.trace -workload hacc # record a workload's I/O trace
//	iosweep -trace hacc.trace                     # replay a trace file
//	iosweep -fabric 127.0.0.1:7777               # submit the sweep to a fabric coordinator
//	iosweep -cache-server http://127.0.0.1:7778 -cache .iosweep-cache  # shared cache tier
//
// With -cache, completed points are memoized on disk keyed by a hash of
// their full configuration (strategy, tolerances, rank count, file-system
// config, workload parameters): a re-run recomputes only points whose
// configuration changed and serves the rest from the cache. The final
// summary line reports how many points ran and how many were cached.
//
// -emit-trace records the per-rank MPI-IO operation stream of a built-in
// workload in the versioned JSON-lines format of docs/TRACE_FORMAT.md.
// -trace replays such a file (from this tool or converted from a real
// application trace) as a scenario against the simulated cluster; the
// replay point's cache key includes the SHA-256 of the trace content, so
// editing the file invalidates exactly that point.
//
// -cpuprofile and -memprofile write runtime/pprof profiles covering the
// whole sweep; inspect them with `go tool pprof`.
//
// -fabric submits the sweep to an iofabric coordinator instead of running
// it locally: points execute on whatever ioworker processes are attached,
// results stream back, and the figures assemble locally — byte-identical
// to the local run. -cache-server layers a shared HTTP cache (iofabric's
// /cache endpoint) over the local -cache directory, so points computed
// anywhere in the fabric are hits here too.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/fabric"
	"iobehind/internal/profiling"
	"iobehind/internal/runner"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code instead of os.Exit calls, so deferred
// cleanup — in particular flushing pprof profiles — runs on every path.
func run() int {
	figs := flag.String("figs", "all", "figures to reproduce: comma list of 1,2,3,4,5,6,7,8,9,10,11,13,14,faults,trace or 'all'")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "cache directory for completed points (empty disables caching)")
	outDir := flag.String("out", "", "also write each figure's output to <out>/fig<N>.txt")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault scenario's random window batch (figure 'faults')")
	checkFaults := flag.Bool("check-faults", false, "fail unless the fault scenario's invariants hold (nonzero retries, recovered limit)")
	traceFile := flag.String("trace", "", "replay this I/O trace file (docs/TRACE_FORMAT.md) instead of sweeping figures")
	emitTrace := flag.String("emit-trace", "", "emit a trace of -workload to this file and exit")
	workload := flag.String("workload", "phased", "built-in workload for -emit-trace: phased, hacc, wacomm, or ior")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	fabricAddr := flag.String("fabric", "", "submit the sweep to the fabric coordinator at this TCP address instead of running locally")
	cacheServer := flag.String("cache-server", "", "shared cache server URL (iofabric's HTTP endpoint), layered over -cache")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosweep:", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
		}
	}()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "iosweep: unknown scale %q (want quick or paper)\n", *scaleFlag)
		return 2
	}

	// -emit-trace short-circuits the sweep: record the chosen built-in
	// workload's I/O as a trace file and exit.
	if *emitTrace != "" {
		raw, err := experiments.EmitBuiltinTrace(*workload, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 2
		}
		if err := os.WriteFile(*emitTrace, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "iosweep: wrote %d-byte %s trace (%s scale) to %s\n",
			len(raw), *workload, scale, *emitTrace)
		return 0
	}

	// Resolve the figure list to distinct experiments, keeping request
	// order. Figures sharing an experiment (1+2, 5+6) are swept once.
	var ids []string
	if *figs == "all" {
		ids = experiments.FigOrder
	} else {
		for _, id := range strings.Split(*figs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	type figExp struct {
		id     string // the id the user asked for
		exp    *experiments.Experiment
		offset int // index of the experiment's first point in the flat sweep
	}
	var sweep []figExp
	var points []runner.Point
	var refs []experiments.PointRef
	if *traceFile != "" {
		// A trace replay replaces the figure sweep: the trace file is the
		// experiment, and its content hash keys the runner cache, so
		// re-running the same file hits and any edit misses.
		raw, err := os.ReadFile(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
		name := strings.TrimSuffix(filepath.Base(*traceFile), filepath.Ext(*traceFile))
		exp, err := experiments.TraceReplayExperiment(name, raw, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosweep: %s: %v\n", *traceFile, err)
			return 2
		}
		sweep = append(sweep, figExp{id: exp.Fig, exp: exp})
		points = append(points, exp.Points...)
	} else {
		// The plan is the same enumeration iofabric's self-run and any
		// attached worker reproduce, so refs resolve identically there.
		// The fault-scenario seed lands in the point configs (and refs),
		// so each seed caches separately.
		plan, err := experiments.BuildPlan(ids, scale, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 2
		}
		for _, e := range plan.Entries {
			sweep = append(sweep, figExp{id: e.ID, exp: e.Exp, offset: e.Offset})
		}
		points, refs = plan.Points, plan.Refs
	}

	opts := runner.Options{Workers: *workers}
	var cacheLabel string
	var pointCache runner.PointCache
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
		pointCache = cache
		cacheLabel = *cacheDir
	}
	if *cacheServer != "" {
		remote := fabric.NewRemoteCache(*cacheServer)
		if pointCache != nil {
			pointCache = fabric.NewTieredCache(pointCache, remote)
			cacheLabel = *cacheDir + "+" + remote.URL()
		} else {
			pointCache = remote
			cacheLabel = remote.URL()
		}
	}
	if pointCache != nil {
		opts.Cache = pointCache
	}
	r := runner.New(opts)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var results []runner.Result
	var runErr error
	var fabricStats *fabric.SweepStats
	if *fabricAddr != "" {
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "iosweep: -trace cannot run on the fabric (trace points resolve from file content, not a figure id)")
			return 2
		}
		manifest, err := fabric.ManifestFor(points, refs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "iosweep: "+format+"\n", args...)
		}
		sub, err := fabric.Submit(ctx, *fabricAddr, "iosweep", manifest, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
		fabricStats = &sub.Stats
		results, err = fabric.DecodeResults(points, sub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosweep:", err)
			return 1
		}
	} else {
		results, runErr = r.Run(ctx, points)
	}
	wall := time.Since(start).Round(time.Millisecond)

	failed := 0
	for _, fe := range sweep {
		res, err := fe.exp.Assemble(results[fe.offset : fe.offset+len(fe.exp.Points)])
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosweep: figure %s: %v\n", fe.id, err)
			failed++
			continue
		}
		if *checkFaults {
			if c, ok := res.(interface{ Check() error }); ok {
				if err := c.Check(); err != nil {
					fmt.Fprintf(os.Stderr, "iosweep: figure %s: %v\n", fe.id, err)
					failed++
					continue
				}
				fmt.Fprintf(os.Stderr, "iosweep: figure %s: fault invariants hold\n", fe.id)
			}
		}
		header := fmt.Sprintf("### Figure %s (%s scale, %d points)\n\n",
			fe.id, scale, len(fe.exp.Points))
		body := res.Render()
		fmt.Print(header)
		fmt.Println(body)
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig"+fe.id+".txt")
			if err := os.WriteFile(path, []byte(header+body+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "iosweep:", err)
				return 1
			}
		}
	}

	cached := runner.CachedCount(results)
	if fabricStats != nil {
		fmt.Fprintf(os.Stderr, "iosweep: fabric sweep of %d points (%d computed, %d journal, %d cache, %d redispatched) across %d figures in %v via %s\n",
			fabricStats.Points, fabricStats.Computed, fabricStats.JournalHits, fabricStats.CacheHits,
			fabricStats.Redispatches, len(sweep), wall, *fabricAddr)
	} else {
		fmt.Fprintf(os.Stderr, "iosweep: %d points (%d computed, %d cached) across %d figures in %v with %d workers\n",
			len(points), len(points)-cached, cached, len(sweep), wall, r.Workers())
	}
	if c := r.Cache(); c != nil && fabricStats == nil {
		fmt.Fprintln(os.Stderr, cacheStatsLine(cacheLabel, c.Stats()))
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "iosweep:", runErr)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}
