package main

import (
	"fmt"

	"iobehind/internal/runner"
)

// cacheStatsLine renders the post-sweep cache-effectiveness summary
// printed to stderr after every cached sweep — local directory, remote
// cache server, or a fabric submission. The label names the cache (a
// directory path or a server URL). The format is pinned by
// TestCacheStatsLineFormat so scripts and the fabric smoke test can
// parse it.
func cacheStatsLine(label string, st runner.CacheStats) string {
	return fmt.Sprintf("iosweep: cache %s: %d hits, %d misses, %d writes, %d errors",
		label, st.Hits, st.Misses, st.Writes, st.Errors)
}
