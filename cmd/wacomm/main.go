// Command wacomm runs the WaComM++ model on the simulated stack and
// prints the traced report with the application-level series:
//
//	wacomm -ranks 96 -iterations 50 -strategy up-only
//	wacomm -ranks 9216 -strategy none
package main

import (
	"flag"
	"fmt"
	"os"

	"iobehind"
	"iobehind/internal/report"
)

func main() {
	ranks := flag.Int("ranks", 96, "MPI ranks")
	iterations := flag.Int("iterations", 50, "simulated hours")
	particles := flag.Int64("particles", 2_000_000, "total particles")
	strategy := flag.String("strategy", "up-only", "limiting strategy: none, direct, up-only, adaptive")
	tol := flag.Float64("tol", 1.1, "strategy tolerance")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var strat iobehind.StrategyConfig
	switch *strategy {
	case "none":
	case "direct":
		strat = iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: *tol}
	case "up-only", "uponly":
		strat = iobehind.StrategyConfig{Strategy: iobehind.UpOnly, Tol: *tol}
	case "adaptive":
		strat = iobehind.StrategyConfig{Strategy: iobehind.Adaptive, Tol: *tol}
	default:
		fmt.Fprintf(os.Stderr, "wacomm: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	rep, err := iobehind.RunWacomm(iobehind.Options{
		Ranks:    *ranks,
		Seed:     *seed,
		Strategy: strat,
	}, iobehind.WacommConfig{
		Particles:  *particles,
		Iterations: *iterations,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wacomm:", err)
		os.Exit(1)
	}

	d := rep.Distribution()
	fmt.Printf("WaComM++ %d ranks, %d iterations, strategy %s\n",
		rep.Ranks, *iterations, rep.Strategy.Label())
	fmt.Printf("  app time            %s\n", report.Seconds(rep.AppTime))
	fmt.Printf("  required bandwidth  %s\n", report.Rate(rep.RequiredBandwidth))
	fmt.Printf("  exploit / lost      %s / %s\n",
		report.Pct(d.ExploitTotal()), report.Pct(d.AsyncWriteLost+d.AsyncReadLost))
	end := iobehind.Time(rep.Runtime)
	tSeries, bSeries, blSeries := rep.TSeries(), rep.BSeries(), rep.BLSeries()
	fmt.Printf("  T  peak %-12s |%s|\n", report.Rate(tSeries.Max()), report.Sparkline(tSeries, 0, end, 60))
	fmt.Printf("  B  peak %-12s |%s|\n", report.Rate(bSeries.Max()), report.Sparkline(bSeries, 0, end, 60))
	if len(blSeries.Points) > 0 {
		fmt.Printf("  BL peak %-12s |%s|\n", report.Rate(blSeries.Max()), report.Sparkline(blSeries, 0, end, 60))
	}
}
