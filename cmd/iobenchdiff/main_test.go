package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: iobehind/internal/des
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventThroughput-8   	 5000000	       250.5 ns/op	      48 B/op	       3 allocs/op
BenchmarkEventThroughput-8   	 5200000	       240.0 ns/op	      50 B/op	       3 allocs/op
BenchmarkProcHandoff-8       	 1000000	      1100 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	iobehind/internal/des	2.100s
pkg: iobehind/internal/pfs
BenchmarkFlowChurn-8         	  500000	      4476 ns/op	     547 B/op	      10 allocs/op
PASS
ok  	iobehind/internal/pfs	1.500s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	et := snap.Benchmarks[0]
	if et.Name != "iobehind/internal/des.BenchmarkEventThroughput" {
		t.Fatalf("name = %q", et.Name)
	}
	// Two -count runs collapse to the per-metric minimum.
	if et.NsPerOp != 240.0 || et.BytesPerOp != 48 || et.AllocsPerOp != 3 {
		t.Fatalf("aggregated = %+v", et)
	}
	if et.Iterations != 5200000 {
		t.Fatalf("iterations = %d", et.Iterations)
	}
	fc := snap.Benchmarks[2]
	if fc.Name != "iobehind/internal/pfs.BenchmarkFlowChurn" {
		t.Fatalf("name = %q", fc.Name)
	}
	if fc.NsPerOp != 4476 || fc.AllocsPerOp != 10 {
		t.Fatalf("flow churn = %+v", fc)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	iobehind/internal/des	2.100s",
		"Benchmark",                   // no fields
		"BenchmarkX-8 notanumber 250", // bad iteration count
		"BenchmarkX-8 100 garbage ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Errorf("parseBenchLine(%q) accepted garbage", line)
		}
	}
	// A line without -benchmem columns still parses (ns/op only).
	b, ok := parseBenchLine("BenchmarkX-16 	 100	 250 ns/op", "p")
	if !ok || b.Name != "p.BenchmarkX" || b.NsPerOp != 250 || b.AllocsPerOp != 0 {
		t.Fatalf("plain line: ok=%v b=%+v", ok, b)
	}
}

func bench(name string, ns float64, bytes, allocs int64) Benchmark {
	return Benchmark{Name: name, Iterations: 1000, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func TestDiffThresholds(t *testing.T) {
	base := &Snapshot{Label: "base", Benchmarks: []Benchmark{
		bench("a", 100, 64, 4),
		bench("b", 100, 64, 4),
		bench("c", 100, 64, 4),
		bench("retired", 100, 64, 4),
	}}
	cur := &Snapshot{Label: "cur", Benchmarks: []Benchmark{
		bench("a", 109, 64, 4),   // within 10% ns threshold: ok
		bench("b", 250, 64, 4),   // ns regression
		bench("c", 50, 128, 5),   // faster but one extra alloc: regression
		bench("added", 10, 0, 0), // only in cur: never fails
	}}
	var out bytes.Buffer
	if got := diff(base, cur, 0.10, 0, false, &out); got != 2 {
		t.Fatalf("regressions = %d, want 2\n%s", got, out.String())
	}
	text := out.String()
	for _, want := range []string{"NEW ", "GONE  retired", "allocs/op 4 -> 5"} {
		if !strings.Contains(text, want) {
			t.Errorf("diff output missing %q:\n%s", want, text)
		}
	}
	// Everything identical: no regressions.
	out.Reset()
	if got := diff(base, base, 0.10, 0, false, &out); got != 0 {
		t.Fatalf("self-diff regressions = %d\n%s", got, out.String())
	}
}

// TestDiffAllocsSlack pins the slack semantics: a relative tolerance for
// concurrent benchmarks whose allocation counts flap with scheduler
// interleaving, with growth from a 0-alloc baseline failing under any
// slack (floor(0*slack) is zero extra allocations).
func TestDiffAllocsSlack(t *testing.T) {
	base := &Snapshot{Label: "base", Benchmarks: []Benchmark{
		bench("concurrent", 100, 64, 10000),
		bench("zeroalloc", 100, 0, 0),
	}}
	cur := &Snapshot{Label: "cur", Benchmarks: []Benchmark{
		bench("concurrent", 100, 64, 10400), // +4%
		bench("zeroalloc", 100, 16, 1),      // 0 -> 1: always a regression
	}}
	var out bytes.Buffer
	if got := diff(base, cur, 0.10, 0.05, false, &out); got != 1 {
		t.Fatalf("slack regressions = %d, want 1 (zeroalloc only)\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op 0 -> 1") {
		t.Fatalf("missing zeroalloc failure:\n%s", out.String())
	}
	// Past the slack the concurrent benchmark fails too.
	out.Reset()
	if got := diff(base, cur, 0.10, 0.03, false, &out); got != 2 {
		t.Fatalf("tight-slack regressions = %d, want 2\n%s", got, out.String())
	}
}

// TestDiffFailMissing pins the bench-check guard against silently
// deleted benchmarks: with -fail-missing, a baseline entry absent from
// the current run counts as a regression; without it, GONE stays
// informational.
func TestDiffFailMissing(t *testing.T) {
	base := &Snapshot{Label: "base", Benchmarks: []Benchmark{
		bench("kept", 100, 64, 4),
		bench("deleted", 100, 64, 4),
	}}
	cur := &Snapshot{Label: "cur", Benchmarks: []Benchmark{
		bench("kept", 100, 64, 4),
	}}
	var out bytes.Buffer
	if got := diff(base, cur, 0.10, 0, true, &out); got != 1 {
		t.Fatalf("fail-missing regressions = %d, want 1\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "GONE  deleted") {
		t.Fatalf("missing GONE line:\n%s", out.String())
	}
	out.Reset()
	if got := diff(base, cur, 0.10, 0, false, &out); got != 0 {
		t.Fatalf("informational GONE counted as regression: %d\n%s", got, out.String())
	}

	// End-to-end through the flag surface.
	dir := t.TempDir()
	write := func(name string, s *Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath, curPath := write("base.json", base), write("cur.json", cur)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"diff", "-fail-missing", basePath, curPath}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("diff -fail-missing exit = %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"diff", basePath, curPath}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("diff without -fail-missing exit = %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestRunParseAndDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"
	var stdout, stderr bytes.Buffer
	code := run([]string{"parse", "-label", "base", "-o", basePath},
		strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("parse exit %d: %s", code, stderr.String())
	}
	snap, err := readSnapshot(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "base" || len(snap.Benchmarks) != 3 {
		t.Fatalf("round-trip snapshot = %+v", snap)
	}
	// Self-diff is clean and exits 0.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"diff", basePath, basePath}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit %d: %s", code, stderr.String())
	}
	// An empty input is an error, not an empty snapshot.
	if code := run([]string{"parse"}, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Fatalf("empty parse exit %d", code)
	}
}
