// Command iobenchdiff turns `go test -bench -benchmem` output into a
// stable JSON snapshot and compares two snapshots for performance
// regressions. It is the measurement loop that keeps the simulation
// kernel's hot paths allocation-free: `make bench-json` captures a
// snapshot per commit, `make bench-check` fails the build when ns/op
// grows past a threshold or allocs/op grows at all relative to the
// committed BENCH_baseline.json.
//
//	go test -run xxx -bench=. -benchmem ./internal/... | iobenchdiff parse -label baseline -o BENCH_baseline.json
//	iobenchdiff diff -ns-threshold 0.10 BENCH_baseline.json BENCH_new.json
//
// Snapshot schema (BENCH_<label>.json):
//
//	{
//	  "label": "baseline",
//	  "benchmarks": [
//	    {"name": "iobehind/internal/des.BenchmarkEventThroughput",
//	     "iterations": 1000000, "ns_per_op": 250.0,
//	     "bytes_per_op": 48, "allocs_per_op": 1}
//	  ]
//	}
//
// Benchmark names are qualified by the package path from the `pkg:`
// header lines so identically named benchmarks in different packages
// never collide. Repeated runs of one benchmark (-count=N) collapse to
// the minimum of each metric: the best observed run is the least noisy
// estimate of the code's actual cost, and using it on both sides keeps
// the comparison fair.
//
// diff exits 1 when, for any benchmark present in both snapshots, the
// new ns/op exceeds the old by more than -ns-threshold (fraction,
// default 0.10) or the new allocs/op exceeds the old by more than
// -allocs-slack (fraction, default 0 — any growth fails). The slack
// exists for concurrent benchmarks whose allocation counts depend on
// scheduler interleaving and flap a few percent run to run; it is
// computed as floor(old*slack) extra allocations, so a benchmark pinned
// at 0 allocs/op stays pinned at exactly 0 under any slack. New
// benchmarks are reported but never fail. Benchmarks present in the
// baseline but missing from the current run are reported as GONE and,
// with -fail-missing (used by make bench-check), count as regressions —
// otherwise deleting a guarded benchmark would silently drop its
// coverage. Retiring one deliberately means refreshing the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's aggregated result.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the on-disk BENCH_<label>.json document.
type Snapshot struct {
	Label      string      `json:"label"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: iobenchdiff parse|diff [flags] [args]")
		return 2
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:], stdin, stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "iobenchdiff: unknown command %q (want parse or diff)\n", args[0])
		return 2
	}
}

func runParse(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "snapshot label stored in the JSON document")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "iobenchdiff parse: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "iobenchdiff:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	snap, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(stderr, "iobenchdiff:", err)
		return 1
	}
	snap.Label = *label
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "iobenchdiff: no benchmark lines found in input")
		return 1
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "iobenchdiff:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		stdout.Write(enc)
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(stderr, "iobenchdiff:", err)
		return 1
	}
	fmt.Fprintf(stderr, "iobenchdiff: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	return 0
}

// parseBench reads `go test -bench -benchmem` output. Lines it does not
// recognize (headers, PASS/ok, test logs) are skipped.
func parseBench(r io.Reader) (*Snapshot, error) {
	byName := map[string]*Benchmark{}
	var order []string
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		b, ok := parseBenchLine(line, pkg)
		if !ok {
			continue
		}
		prev, seen := byName[b.Name]
		if !seen {
			byName[b.Name] = &b
			order = append(order, b.Name)
			continue
		}
		// -count=N repetition: keep the minimum of each metric.
		if b.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp < prev.BytesPerOp {
			prev.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp < prev.AllocsPerOp {
			prev.AllocsPerOp = b.AllocsPerOp
		}
		if b.Iterations > prev.Iterations {
			prev.Iterations = b.Iterations
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	for _, name := range order {
		snap.Benchmarks = append(snap.Benchmarks, *byName[name])
	}
	return snap, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkEventThroughput-8   5000000   250 ns/op   48 B/op   1 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots from machines with
// different core counts stay comparable, and the name is qualified with
// the enclosing package path.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	var b Benchmark
	if !strings.HasPrefix(line, "Benchmark") {
		return b, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return b, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return b, false
	}
	b.Name = name
	if pkg != "" {
		b.Name = pkg + "." + name
	}
	b.Iterations = iters
	// The rest is value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.AllocsPerOp = v
		}
	}
	return b, sawNs
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nsThreshold := fs.Float64("ns-threshold", 0.10,
		"fail when new ns/op exceeds old by more than this fraction")
	failMissing := fs.Bool("fail-missing", false,
		"fail when a benchmark present in the baseline is missing from the current run")
	allocsSlack := fs.Float64("allocs-slack", 0,
		"tolerate allocs/op growth up to this fraction of the baseline (0 allocs stays exact)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: iobenchdiff diff [-ns-threshold F] [-allocs-slack F] [-fail-missing] old.json new.json")
		return 2
	}
	old, err := readSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "iobenchdiff:", err)
		return 1
	}
	cur, err := readSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "iobenchdiff:", err)
		return 1
	}
	regressions := diff(old, cur, *nsThreshold, *allocsSlack, *failMissing, stdout)
	if regressions > 0 {
		fmt.Fprintf(stderr, "iobenchdiff: %d regression(s) vs %s\n", regressions, fs.Arg(0))
		return 1
	}
	return 0
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// diff prints a comparison table and returns the number of regressions:
// benchmarks whose ns/op grew past the threshold or whose allocs/op grew
// past floor(old*allocsSlack) extra allocations (so any growth from a
// 0-alloc baseline always fails). New benchmarks never count; baseline
// benchmarks missing from the current run count only when failMissing is
// set.
func diff(old, cur *Snapshot, nsThreshold, allocsSlack float64, failMissing bool, w io.Writer) int {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		newBy[b.Name] = b
	}
	regressions := 0
	for _, nb := range cur.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-60s %12.1f ns/op %8d B/op %6d allocs/op\n",
				nb.Name, nb.NsPerOp, nb.BytesPerOp, nb.AllocsPerOp)
			continue
		}
		status := "ok   "
		var reasons []string
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+nsThreshold) {
			reasons = append(reasons, fmt.Sprintf("ns/op +%.1f%% (limit +%.0f%%)",
				100*(nb.NsPerOp/ob.NsPerOp-1), 100*nsThreshold))
		}
		if nb.AllocsPerOp > ob.AllocsPerOp+int64(float64(ob.AllocsPerOp)*allocsSlack) {
			reasons = append(reasons, fmt.Sprintf("allocs/op %d -> %d",
				ob.AllocsPerOp, nb.AllocsPerOp))
		}
		if len(reasons) > 0 {
			status = "FAIL "
			regressions++
		}
		fmt.Fprintf(w, "%s %-60s ns/op %10.1f -> %-10.1f B/op %6d -> %-6d allocs/op %4d -> %-4d %s\n",
			status, nb.Name, ob.NsPerOp, nb.NsPerOp, ob.BytesPerOp, nb.BytesPerOp,
			ob.AllocsPerOp, nb.AllocsPerOp, strings.Join(reasons, "; "))
	}
	var gone []string
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		if failMissing {
			fmt.Fprintf(w, "GONE  %s (guarded benchmark missing from current run)\n", name)
			regressions++
		} else {
			fmt.Fprintf(w, "GONE  %s\n", name)
		}
	}
	return regressions
}
