// Command iofabric runs the distributed sweep coordinator: it accepts
// sweep manifests from iosweep -fabric, leases points to attached
// ioworker processes, re-dispatches leases that expire (straggler
// speculation — the first byte-identical result wins), journals accepted
// results so a killed coordinator resumes where it stopped, and serves
// the shared content-addressed result cache plus /metrics over HTTP.
//
//	iofabric                                         # defaults: :7777 TCP, :7778 HTTP
//	iofabric -listen 0.0.0.0:7777 -http 0.0.0.0:7778 -cache .iofabric-cache -journal fabric.jsonl
//	iofabric -smoke                                  # self-contained distributed-vs-serial check
//
// The HTTP endpoint serves GET/PUT /cache/{key} (the shared cache the
// workers and iosweep -cache-server speak), GET /metrics (Prometheus
// text exposition: points pending/in-flight/done, re-dispatches,
// per-worker liveness, cache hit ratio), and GET /healthz.
//
// -smoke runs the whole fabric against itself on loopback: a coordinator,
// two in-process workers, one of which is killed after the first accepted
// result so its leases re-dispatch, and a submission of every figure at
// quick scale whose rendered output is compared byte-for-byte against the
// serial runner. Exit status 0 means the fabric path is sound end to end.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"iobehind/internal/experiments"
	"iobehind/internal/fabric"
	"iobehind/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP address for the fabric protocol (workers and submissions)")
	httpAddr := flag.String("http", "127.0.0.1:7778", "HTTP address for the shared cache, /metrics, and /healthz")
	cacheDir := flag.String("cache", ".iofabric-cache", "content-addressed result cache directory")
	journalPath := flag.String("journal", ".iofabric-journal.jsonl", "acceptance journal for crash resume (empty disables)")
	lease := flag.Duration("lease", 60*time.Second, "lease timeout before a point is re-dispatched")
	quiet := flag.Bool("q", false, "suppress per-lease logs")
	smoke := flag.Bool("smoke", false, "run the self-contained distributed-vs-serial smoke check and exit")
	smokeScale := flag.String("smoke-scale", "quick", "experiment scale for -smoke")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *smoke {
		return runSmoke(*smokeScale, logf)
	}

	cache, err := runner.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iofabric:", err)
		return 1
	}
	co, err := fabric.NewCoordinator(fabric.Options{
		Cache:        cache,
		JournalPath:  *journalPath,
		LeaseTimeout: *lease,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iofabric:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iofabric:", err)
		return 1
	}
	co.Start(ln)
	defer co.Close()

	httpSrv := &http.Server{Addr: *httpAddr, Handler: co.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "iofabric: http:", err)
		}
	}()
	defer httpSrv.Close()

	fmt.Fprintf(os.Stderr, "iofabric: coordinator on %s, cache server on http://%s (cache %s, journal %s)\n",
		ln.Addr(), *httpAddr, *cacheDir, *journalPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "iofabric: shutting down")
	return 0
}

// runSmoke is the end-to-end self-check behind `make fabric-smoke`: a
// loopback coordinator, two workers, a deterministic kill of one worker
// after the first accepted result, and a byte-for-byte comparison of
// every figure's rendered output against the serial runner.
func runSmoke(scaleName string, logf func(string, ...any)) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "iofabric: smoke FAIL: "+format+"\n", args...)
		return 1
	}
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return fail("%v", err)
	}
	plan, err := experiments.BuildPlan(nil, scale, 0)
	if err != nil {
		return fail("%v", err)
	}
	manifest, err := fabric.ManifestFor(plan.Points, plan.Refs)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "iofabric: smoke: %d points across %d experiments at %s scale\n",
		len(plan.Points), len(plan.Entries), scale)

	// Ground truth first: the serial, cache-less runner.
	serialResults, err := runner.Serial().Run(context.Background(), plan.Points)
	if err != nil {
		return fail("serial run: %v", err)
	}

	tmp, err := os.MkdirTemp("", "iofabric-smoke-*")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	cache, err := runner.OpenCache(tmp)
	if err != nil {
		return fail("%v", err)
	}

	workerCtx1, killWorker1 := context.WithCancel(context.Background())
	defer killWorker1()
	var killOnce sync.Once
	co, err := fabric.NewCoordinator(fabric.Options{
		Cache:        cache,
		LeaseTimeout: 5 * time.Second,
		IdleRetry:    10 * time.Millisecond,
		Logf:         logf,
		OnAccept: func(worker string, index int, pointKey string) {
			killOnce.Do(func() {
				logf("iofabric: smoke: killing worker w1 after first acceptance (%s)", pointKey)
				killWorker1()
			})
		},
	})
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	co.Start(ln)
	defer co.Close()
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	httpSrv := &http.Server{Handler: co.Handler()}
	go httpSrv.Serve(httpLn)
	defer httpSrv.Close()
	cacheURL := "http://" + httpLn.Addr().String()

	workerCtx2, stopWorker2 := context.WithCancel(context.Background())
	defer stopWorker2()
	var wg sync.WaitGroup
	for i, wctx := range []context.Context{workerCtx1, workerCtx2} {
		wg.Add(1)
		go func(i int, wctx context.Context) {
			defer wg.Done()
			fabric.RunWorker(wctx, fabric.WorkerOptions{
				Coordinator: co.Addr(),
				ID:          fmt.Sprintf("w%d", i+1),
				Executors:   2,
				RemoteCache: fabric.NewRemoteCache(cacheURL),
				Logf:        logf,
				MaxBackoff:  200 * time.Millisecond,
			})
		}(i, wctx)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sub, err := fabric.Submit(ctx, co.Addr(), "iofabric-smoke", manifest, logf)
	if err != nil {
		return fail("submit: %v", err)
	}
	stopWorker2()
	wg.Wait()

	fabricResults, err := fabric.DecodeResults(plan.Points, sub)
	if err != nil {
		return fail("%v", err)
	}
	for _, e := range plan.Entries {
		serialR, err := e.Exp.Assemble(serialResults[e.Offset : e.Offset+len(e.Exp.Points)])
		if err != nil {
			return fail("assemble %s (serial): %v", e.ID, err)
		}
		fabricR, err := e.Exp.Assemble(fabricResults[e.Offset : e.Offset+len(e.Exp.Points)])
		if err != nil {
			return fail("assemble %s (fabric): %v", e.ID, err)
		}
		if fabricR.Render() != serialR.Render() {
			return fail("figure %s: distributed render differs from serial", e.ID)
		}
	}
	snap := co.Snapshot()
	fmt.Fprintf(os.Stderr, "iofabric: smoke PASS: %d points byte-identical to serial (computed=%d redispatches=%d duplicates=%d mismatches=%d, %d workers seen)\n",
		len(plan.Points), sub.Stats.Computed, snap.Totals.Redispatches, snap.Totals.Duplicates, snap.Totals.Mismatches, len(snap.Workers))
	if snap.Totals.Mismatches != 0 {
		return fail("duplicate completions disagreed byte-for-byte")
	}
	return 0
}
