// Ablation benchmarks for the design choices called out in DESIGN.md:
// phase-end rule, per-request aggregation, sub-request size, tolerance,
// the hiccup (unpaced-I/O interference) model, and deficit carrying.
// Each benchmark reports the quantity the choice trades off.
package iobehind_test

import (
	"testing"

	"iobehind"
	"iobehind/internal/adio"
	"iobehind/internal/des"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// multiRequestB runs a two-requests-per-phase kernel and returns the
// measured B of the first phase under the given tracer options.
func multiRequestB(b *testing.B, phaseEnd tmio.PhaseEndRule, agg tmio.Aggregation) float64 {
	e := des.NewEngine(1)
	w := mpi.NewWorld(e, mpi.Config{Size: 1})
	fs := pfs.New(e, pfs.LichtenbergConfig())
	sys := mpiio.NewSystem(w, fs, adio.Config{})
	tr := tmio.Attach(sys, tmio.Config{
		PhaseEnd: phaseEnd, Aggregation: agg, DisableOverhead: true,
	})
	if err := w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, "x")
		q1 := f.IwriteAt(0, 100<<20)
		q2 := f.IwriteAt(0, 100<<20)
		r.Compute(des.Second)
		q1.Wait()
		r.Compute(des.Second)
		q2.Wait()
	}); err != nil {
		b.Fatal(err)
	}
	rep := tr.Report()
	if len(rep.BPhases) == 0 {
		b.Fatal("no phases")
	}
	return rep.BPhases[0].Value
}

// BenchmarkAblationPhaseEndRule compares the first-wait (default, higher
// B) and last-wait phase-end rules of Sec. IV-A.
func BenchmarkAblationPhaseEndRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		first := multiRequestB(b, tmio.FirstWait, tmio.Sum)
		last := multiRequestB(b, tmio.LastWait, tmio.Sum)
		b.ReportMetric(first/1e6, "B-firstwait-MB/s")
		b.ReportMetric(last/1e6, "B-lastwait-MB/s")
		b.ReportMetric(first/last, "first-over-last-x")
	}
}

// BenchmarkAblationAggregation compares summing vs averaging the
// per-request bandwidths (the paper sums for higher, safer values).
func BenchmarkAblationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := multiRequestB(b, tmio.FirstWait, tmio.Sum)
		avg := multiRequestB(b, tmio.FirstWait, tmio.Average)
		b.ReportMetric(sum/avg, "sum-over-avg-x")
	}
}

// BenchmarkAblationSubRequestSize sweeps the throttling granularity. The
// duty-cycle limiter moves each sub-request at full file-system speed and
// sleeps the rest, so larger sub-requests mean longer full-speed bursts —
// coarser traffic shaping (metric: the longest contiguous active-transfer
// segment) — while smaller ones cost more simulation events (visible in
// ns/op).
func BenchmarkAblationSubRequestSize(b *testing.B) {
	for _, size := range []int64{1 << 20, 8 << 20, 64 << 20} {
		size := size
		name := map[int64]string{1 << 20: "1MiB", 8 << 20: "8MiB", 64 << 20: "64MiB"}[size]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(1)
				fs := pfs.New(e, pfs.Config{WriteCapacity: 1e9, ReadCapacity: 1e9})
				a := adio.NewAgent(e, fs, nil, adio.Config{SubRequestSize: size})
				var burst des.Duration
				e.Spawn("app", func(p *des.Proc) {
					a.SetLimit(100e6)
					for j := 0; j < 10; j++ {
						req := a.Submit(pfs.Write, 200<<20, true)
						req.Wait(p)
						for _, seg := range req.Stats.Segments {
							if seg.Duration() > burst {
								burst = seg.Duration()
							}
						}
					}
					a.Close()
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(burst.Seconds()*1000, "max-burst-ms")
			}
		})
	}
}

// BenchmarkAblationTolerance sweeps the direct strategy's tolerance: low
// tolerance risks waiting, high tolerance wastes exploitation.
func BenchmarkAblationTolerance(b *testing.B) {
	for _, tol := range []float64{1.0, 1.1, 1.5, 2.0} {
		tol := tol
		b.Run(formatTol(tol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := iobehind.RunHacc(iobehind.Options{
					Ranks:    16,
					Strategy: iobehind.StrategyConfig{Strategy: iobehind.Direct, Tol: tol},
					Tracer:   iobehind.TracerConfig{DisableOverhead: true},
				}, iobehind.HaccConfig{
					Loops:            5,
					ParticlesPerRank: 2_000_000,
					FixedPhase:       500 * iobehind.Millisecond,
					JitterFraction:   0.08,
				})
				if err != nil {
					b.Fatal(err)
				}
				d := rep.Distribution()
				b.ReportMetric(d.ExploitTotal(), "exploit-%")
				b.ReportMetric(d.AsyncWriteLost+d.AsyncReadLost, "lost-%")
			}
		})
	}
}

func formatTol(tol float64) string {
	switch tol {
	case 1.0:
		return "tol1.0"
	case 1.1:
		return "tol1.1"
	case 1.5:
		return "tol1.5"
	default:
		return "tol2.0"
	}
}

// BenchmarkAblationHiccupModel toggles the unpaced-I/O hiccup model: with
// it, the unthrottled large-scale WaComM++ run slows down (the paper's
// Fig. 10 speedup); without it, the runs tie — the null hypothesis.
func BenchmarkAblationHiccupModel(b *testing.B) {
	run := func(hiccup bool, strat tmio.StrategyConfig) float64 {
		agent := adio.Config{QueueLatencyPerFlow: 10 * des.Microsecond}
		if hiccup {
			agent.HiccupProb = 6e-4
			agent.HiccupMean = 150 * des.Millisecond
		}
		e := des.NewEngine(2)
		w := mpi.NewWorld(e, mpi.Config{Size: 512})
		fs := pfs.New(e, pfs.LichtenbergConfig())
		sys := mpiio.NewSystem(w, fs, agent)
		tr := tmio.Attach(sys, tmio.Config{Strategy: strat, DisableOverhead: true})
		if err := w.Run(workloads.WacommMain(sys, workloads.WacommConfig{
			Particles: 500_000, Iterations: 20,
		})); err != nil {
			b.Fatal(err)
		}
		return tr.Report().AppTime.Seconds()
	}
	upOnly := tmio.StrategyConfig{Strategy: tmio.UpOnly, Tol: 1.1}
	for i := 0; i < b.N; i++ {
		withNone := run(true, tmio.StrategyConfig{})
		withUp := run(true, upOnly)
		withoutNone := run(false, tmio.StrategyConfig{})
		withoutUp := run(false, upOnly)
		b.ReportMetric(100*(withNone-withUp)/withNone, "speedup-with-%")
		b.ReportMetric(100*(withoutNone-withoutUp)/withoutNone, "speedup-without-%")
	}
}

// BenchmarkAblationCarryDeficit toggles carrying the Case-B overrun across
// requests: carried deficit lets a recovering file system repay earlier
// stalls, raising effective throughput past the per-request limit.
func BenchmarkAblationCarryDeficit(b *testing.B) {
	run := func(carry bool) float64 {
		e := des.NewEngine(1)
		fs := pfs.New(e, pfs.Config{WriteCapacity: 5e6, ReadCapacity: 5e6})
		a := adio.NewAgent(e, fs, nil, adio.Config{
			SubRequestSize: 5e6, CarryDeficit: carry,
		})
		var total des.Duration
		e.Spawn("app", func(p *des.Proc) {
			a.SetLimit(10e6)
			a.Submit(pfs.Write, 20e6, true).Wait(p) // overruns, banks deficit
			a.SetLimit(2.5e6)
			req := a.Submit(pfs.Write, 10e6, true)
			req.Wait(p)
			total = req.Stats.End.Sub(req.Stats.Start)
			a.Close()
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		return total.Seconds()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "dur-carry-s")
		b.ReportMetric(run(false), "dur-nocarry-s")
	}
}

// BenchmarkAblationScaleSweep measures simulator performance itself:
// virtual-seconds simulated per wall-second across world sizes, the
// scalability claim of the DES substrate.
func BenchmarkAblationScaleSweep(b *testing.B) {
	for _, ranks := range []int{96, 1536, 9216} {
		ranks := ranks
		name := map[int]string{96: "96", 1536: "1536", 9216: "9216"}[ranks]
		b.Run("ranks"+name, func(b *testing.B) {
			var virtual float64
			for i := 0; i < b.N; i++ {
				rep, err := iobehind.RunWacomm(iobehind.Options{
					Ranks:    ranks,
					NoTracer: false,
					Tracer:   iobehind.TracerConfig{DisableOverhead: true},
				}, iobehind.WacommConfig{Iterations: 5})
				if err != nil {
					b.Fatal(err)
				}
				virtual += rep.AppTime.Seconds()
			}
			b.ReportMetric(virtual/float64(b.N), "virtual-s/op")
		})
	}
}

// BenchmarkAblationPerClassLimits compares the paper's single shared limit
// against per-class (read/write) limits on a workload whose read and write
// phases have very different requirements: the shared limit inherits the
// low read-derived value and makes the writes wait.
func BenchmarkAblationPerClassLimits(b *testing.B) {
	run := func(perClass bool) float64 {
		e := des.NewEngine(1)
		w := mpi.NewWorld(e, mpi.Config{Size: 8})
		fs := pfs.New(e, pfs.LichtenbergConfig())
		sys := mpiio.NewSystem(w, fs, adio.Config{})
		tr := tmio.Attach(sys, tmio.Config{
			Strategy:        tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1},
			PerClassLimits:  perClass,
			DisableOverhead: true,
		})
		if err := w.Run(workloads.HaccMain(sys, workloads.HaccConfig{
			Loops:            6,
			ParticlesPerRank: 2_000_000,
			FixedPhase:       500 * des.Millisecond,
			VerifyFactor:     0.4, // asymmetric: write window ≪ read window
		})); err != nil {
			b.Fatal(err)
		}
		d := tr.Report().Distribution()
		return d.AsyncWriteLost + d.AsyncReadLost
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "lost-shared-%")
		b.ReportMetric(run(true), "lost-perclass-%")
	}
}

// BenchmarkAblationCollectiveIO compares individual-file-pointer writes
// (the paper's "more challenging" HACC-IO mode) against two-phase
// collective writes under burst-storm conditions: aggregation reduces the
// operation count per storm window by the ranks-per-node factor.
func BenchmarkAblationCollectiveIO(b *testing.B) {
	run := func(collective bool) (visiblePct float64, ops int) {
		e := des.NewEngine(1)
		w := mpi.NewWorld(e, mpi.Config{Size: 64, RanksPerNode: 16})
		fs := pfs.New(e, pfs.LichtenbergConfig())
		sys := mpiio.NewSystem(w, fs, adio.Config{
			SubmitLatencyPerFlow: 2 * des.Millisecond,
		})
		tr := tmio.Attach(sys, tmio.Config{DisableOverhead: true})
		if err := w.Run(func(r *mpi.Rank) {
			f := sys.Open(r, "ckpt.dat")
			for j := 0; j < 5; j++ {
				r.Compute(des.Second)
				// Small per-rank pieces: the per-operation storm cost
				// dominates, which is where aggregation pays off.
				if collective {
					f.WriteAtAll(0, 256<<10)
				} else {
					f.WriteAt(0, 256<<10)
				}
			}
			r.Finalize()
		}); err != nil {
			b.Fatal(err)
		}
		rep := tr.Report()
		return rep.Distribution().VisibleIO(), rep.SyncOps
	}
	for i := 0; i < b.N; i++ {
		indVis, _ := run(false)
		colVis, _ := run(true)
		b.ReportMetric(indVis, "visible-individual-%")
		b.ReportMetric(colVis, "visible-collective-%")
	}
}

// BenchmarkAblationUniformLimit compares the paper's per-rank limits to
// the application-level uniform alternative Sec. IV-B sketches, on an
// imbalanced workload (half the ranks write 4× more).
func BenchmarkAblationUniformLimit(b *testing.B) {
	run := func(uniform bool) float64 {
		e := des.NewEngine(1)
		w := mpi.NewWorld(e, mpi.Config{Size: 8})
		fs := pfs.New(e, pfs.LichtenbergConfig())
		sys := mpiio.NewSystem(w, fs, adio.Config{})
		tr := tmio.Attach(sys, tmio.Config{
			Strategy:        tmio.StrategyConfig{Strategy: tmio.Direct, Tol: 1.1},
			UniformLimit:    uniform,
			DisableOverhead: true,
		})
		if err := w.Run(func(r *mpi.Rank) {
			f := sys.Open(r, "x")
			bytes := int64(80e6)
			if r.ID()%2 == 1 {
				bytes = 20e6
			}
			var req *mpiio.Request
			for j := 0; j < 6; j++ {
				if req != nil {
					req.Wait()
				}
				req = f.IwriteAt(0, bytes)
				r.Compute(des.Second)
			}
			req.Wait()
			r.Finalize()
		}); err != nil {
			b.Fatal(err)
		}
		d := tr.Report().Distribution()
		return d.AsyncWriteLost + d.AsyncReadLost
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "lost-perrank-%")
		b.ReportMetric(run(true), "lost-uniform-%")
	}
}
