// Benchmarks regenerating every figure of the paper's evaluation section.
// One benchmark per figure; figures sharing an experiment (1+2, 5+6) share
// a benchmark. Key quantities are attached as custom benchmark metrics so
// `go test -bench=. -benchmem` prints the paper's headline numbers next to
// the timings.
//
// By default the benchmarks run the Quick scale (seconds). Set
//
//	IOBEHIND_SCALE=paper go test -bench=Fig -benchtime=1x
//
// to run the paper's configurations (up to 9216 ranks; the largest runs
// take minutes each).
package iobehind_test

import (
	"context"
	"os"
	"runtime"
	"testing"

	"iobehind/internal/experiments"
	"iobehind/internal/runner"
	"iobehind/internal/tmio"
)

// benchScale picks the experiment scale from the environment.
func benchScale() experiments.Scale {
	if os.Getenv("IOBEHIND_SCALE") == "paper" {
		return experiments.Paper
	}
	return experiments.Quick
}

// BenchmarkFig01ClusterRuntimes regenerates Figs. 1 and 2: the eight-job
// scenario with and without contention-only limiting of the async job.
// Metrics: mean sync-job speedup (%) and async-job slowdown (%).
func BenchmarkFig01ClusterRuntimes(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig01(scale)
		if err != nil {
			b.Fatal(err)
		}
		var syncGain, asyncCost float64
		var syncJobs int
		for j := range res.Base.Jobs {
			base, lim := res.Base.Jobs[j], res.Limited.Jobs[j]
			delta := 100 * (base.Runtime().Seconds() - lim.Runtime().Seconds()) /
				base.Runtime().Seconds()
			if base.Async {
				asyncCost = -delta
			} else {
				syncGain += delta
				syncJobs++
			}
		}
		b.ReportMetric(syncGain/float64(syncJobs), "sync-speedup-%")
		b.ReportMetric(asyncCost, "async-cost-%")
	}
}

// BenchmarkFig02ClusterBandwidth regenerates the Fig. 2 bandwidth series
// (same runs as Fig. 1; metric: peak aggregate write bandwidth of the
// async job, GB/s, in the unrestricted case).
func BenchmarkFig02ClusterBandwidth(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig01(scale)
		if err != nil {
			b.Fatal(err)
		}
		var asyncPeak float64
		for j, s := range res.Base.Bandwidth {
			if res.Base.Jobs[j].Async {
				asyncPeak = s.Max()
			}
		}
		b.ReportMetric(asyncPeak/1e9, "async-burst-GB/s")
	}
}

// BenchmarkFig05HaccRuntime regenerates Fig. 5: HACC-IO total/app/overhead
// runtime over the rank sweep. Metric: worst-case tracing overhead share
// (the paper bounds it at 9%).
func BenchmarkFig05HaccRuntime(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig05(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxOverheadShare(), "max-overhead-%")
		small, large := res.RequiredBandwidthGrowth()
		b.ReportMetric(large/small, "B-growth-x")
	}
}

// BenchmarkFig06HaccDistribution regenerates Fig. 6 (same sweep as
// Fig. 5). Metric: the largest peri-runtime overhead share — the paper
// reports it below 0.1%.
func BenchmarkFig06HaccDistribution(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig05(scale)
		if err != nil {
			b.Fatal(err)
		}
		var maxPeri float64
		for _, row := range res.Rows {
			if d := row.Report.Distribution(); d.OverheadPeri > maxPeri {
				maxPeri = d.OverheadPeri
			}
		}
		b.ReportMetric(maxPeri, "max-peri-%")
	}
}

// BenchmarkFig07WacommDistribution regenerates Fig. 7: the WaComM++ time
// distribution under direct(tol=2), up-only(tol=1.1), and no limiting.
// Metrics: mean exploit share per strategy.
func BenchmarkFig07WacommDistribution(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig07(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanExploit(tmio.Direct), "exploit-direct-%")
		b.ReportMetric(res.MeanExploit(tmio.UpOnly), "exploit-uponly-%")
		b.ReportMetric(res.MeanExploit(tmio.None), "exploit-none-%")
	}
}

// BenchmarkFig08Wacomm96NoLimit regenerates Fig. 8: unthrottled WaComM++
// at 96 ranks. Metric: burst-to-requirement ratio of the throughput peak.
func BenchmarkFig08Wacomm96NoLimit(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig08(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.T.Max()/res.Report.RequiredBandwidth, "burst-over-B-x")
	}
}

// BenchmarkFig09Wacomm96UpOnly regenerates Fig. 9: WaComM++ with the
// up-only strategy; T follows the previous phase's B_L. Metric: ratio of
// the throttled throughput peak to the applied-limit peak (≈1 when T
// tracks B_L).
func BenchmarkFig09Wacomm96UpOnly(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig09(scale)
		if err != nil {
			b.Fatal(err)
		}
		var blPeak float64
		for _, ph := range res.Report.BLPhases {
			if ph.Value > blPeak {
				blPeak = ph.Value
			}
		}
		if blPeak > 0 {
			b.ReportMetric(res.ThrottledPeak()/blPeak, "T-over-BL-x")
		}
	}
}

// BenchmarkFig10Wacomm9216 regenerates Fig. 10: the large-scale WaComM++
// comparison. Metrics: the limited run's speedup (paper: ≈11.6%) and the
// exploit shares (paper: 57% vs 3.9%).
func BenchmarkFig10Wacomm9216(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "speedup-%")
		b.ReportMetric(res.UpOnly.Report.Distribution().ExploitTotal(), "exploit-uponly-%")
		b.ReportMetric(res.None.Report.Distribution().ExploitTotal(), "exploit-none-%")
	}
}

// BenchmarkFig11HaccDistribution regenerates Fig. 11: HACC-IO under all
// three strategies and without limiting. Metric: exploit per strategy.
func BenchmarkFig11HaccDistribution(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(scale)
		if err != nil {
			b.Fatal(err)
		}
		exploit := res.ExploitByStrategy()
		b.ReportMetric(exploit[tmio.Direct], "exploit-direct-%")
		b.ReportMetric(exploit[tmio.UpOnly], "exploit-uponly-%")
		b.ReportMetric(exploit[tmio.Adaptive], "exploit-adaptive-%")
		b.ReportMetric(exploit[tmio.None], "exploit-none-%")
	}
}

// BenchmarkFig13Hacc9216Series regenerates Fig. 13: the HACC-IO strategy
// time series. Metric: burst-flattening factor — the unlimited run's
// throughput peak over the worst throttled peak.
func BenchmarkFig13Hacc9216Series(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(scale)
		if err != nil {
			b.Fatal(err)
		}
		unlimited := res.Runs[len(res.Runs)-1].BurstPeak()
		var worstThrottled float64
		for _, run := range res.Runs[:len(res.Runs)-1] {
			if p := run.ThrottledPeak(); p > worstThrottled {
				worstThrottled = p
			}
		}
		if worstThrottled > 0 {
			b.ReportMetric(unlimited/worstThrottled, "flattening-x")
		}
	}
}

// BenchmarkFig14Hacc1536Direct regenerates Fig. 14: the direct strategy on
// a noisy file system, where I/O variability causes short waits. Metric:
// visible waiting share (>0, unlike the noise-free runs).
func BenchmarkFig14Hacc1536Direct(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(scale)
		if err != nil {
			b.Fatal(err)
		}
		d := res.Report.Distribution()
		b.ReportMetric(d.AsyncWriteLost+d.AsyncReadLost, "lost-%")
	}
}

// --- Sweep benchmarks: serial vs parallel vs warm cache -----------------
//
// The whole suite is one flat list of independent simulation points
// (figure × strategy × rank count), which is what internal/runner fans
// across a worker pool. Compare
//
//	go test -bench=Sweep -benchtime=1x
//
// on a multi-core machine: SweepParallel divides SweepSerial's wall time
// by roughly min(workers, points-in-flight), and SweepWarmCache replaces
// computation with gob decoding. All three produce identical results —
// TestConcurrentSweepMatchesSerialRender in internal/runner asserts the
// rendered bytes match.

// sweepPoints enumerates every distinct figure's points at the bench scale.
func sweepPoints(b *testing.B) []runner.Point {
	b.Helper()
	var points []runner.Point
	for _, fig := range experiments.FigOrder {
		exp, ok := experiments.ByFig(fig, benchScale())
		if !ok {
			b.Fatalf("figure %s missing", fig)
		}
		points = append(points, exp.Points...)
	}
	return points
}

// runSweep executes the suite's points through r and fails on any point error.
func runSweep(b *testing.B, r *runner.Runner, points []runner.Point) []runner.Result {
	b.Helper()
	results, err := r.Run(context.Background(), points)
	if err != nil {
		b.Fatal(err)
	}
	if err := runner.FirstErr(results); err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkSweepSerial is the baseline: every point of every figure, one
// worker, no cache — the historical execution order.
func BenchmarkSweepSerial(b *testing.B) {
	points := sweepPoints(b)
	for i := 0; i < b.N; i++ {
		runSweep(b, runner.Serial(), points)
	}
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkSweepParallel fans the same points across GOMAXPROCS workers.
// Wall time shrinks with core count; the results are identical.
func BenchmarkSweepParallel(b *testing.B) {
	points := sweepPoints(b)
	for i := 0; i < b.N; i++ {
		runSweep(b, runner.New(runner.Options{}), points)
	}
	b.ReportMetric(float64(len(points)), "points")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkSweepWarmCache measures a re-run against a fully warmed disk
// cache: every point is served by hashing its config and gob-decoding the
// stored result, no simulation at all.
func BenchmarkSweepWarmCache(b *testing.B) {
	cache, err := runner.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	points := sweepPoints(b)
	r := runner.New(runner.Options{Cache: cache})
	runSweep(b, r, points) // warm the cache outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runSweep(b, r, points)
		if got := runner.CachedCount(results); got != len(points) {
			b.Fatalf("only %d/%d points served from cache", got, len(points))
		}
	}
	b.ReportMetric(float64(len(points)), "points")
}
