module iobehind

go 1.22
