// Package iobehind reproduces "I/O Behind the Scenes: Bandwidth
// Requirements of HPC Applications With Asynchronous I/O" (Tarraf et al.,
// IEEE CLUSTER 2024) as a deterministic virtual-time simulation stack.
//
// The package is the public facade: it assembles the discrete-event
// engine, the parallel-file-system model, the MPI-like runtime, the
// MPI-IO/ADIO layer with the bandwidth-limiting I/O agents, and the TMIO
// tracer, and runs workloads against them.
//
// Minimal use — one traced simulation:
//
//	sim := iobehind.NewSim(iobehind.Options{
//	    Ranks:    96,
//	    Strategy: iobehind.StrategyConfig{Strategy: iobehind.UpOnly, Tol: 1.1},
//	})
//	report, err := sim.Run(iobehind.PhasedMain(sim.IO, iobehind.PhasedConfig{}))
//
// The returned Report carries the paper's metrics: the rank-level required
// bandwidths B_ij and throughputs T_ij, the application-level step series
// B, B_L and T (Eq. 3), the time-distribution breakdown of Figs. 6/7/11,
// and the tracing overhead split into its peri- and post-runtime parts.
//
// Because every simulation is a pure function of its seed and
// configuration, independent runs parallelize trivially. The experiment
// suite decomposes each paper figure into independent sweep points and
// fans them across a worker pool with disk-cached results
// (internal/runner); rendered output is byte-identical to the serial
// path. Parallel-sweep quickstart:
//
//	r := runner.New(runner.Options{Workers: 8, Cache: cache}) // cache optional
//	res, err := experiments.Fig05With(ctx, experiments.Quick, r)
//	fmt.Print(res.Render())
//
// or, from the command line:
//
//	go run ./cmd/iosweep -figs 1,5,8 -scale quick -j 8 -cache .iosweep-cache
//
// See docs/ARCHITECTURE.md for the package map and docs/TUTORIAL.md for a
// walk-through.
package iobehind

import (
	"iobehind/internal/adio"
	"iobehind/internal/cluster"
	"iobehind/internal/des"
	"iobehind/internal/ftio"
	"iobehind/internal/mpi"
	"iobehind/internal/mpiio"
	"iobehind/internal/pfs"
	"iobehind/internal/region"
	"iobehind/internal/tmio"
	"iobehind/internal/workloads"
)

// Re-exported types: the stable public surface over the internal packages.
type (
	// Report is a traced run's aggregated result.
	Report = tmio.Report
	// Distribution is the percentage time breakdown of a report.
	Distribution = tmio.Distribution
	// Strategy selects the bandwidth-limiting strategy.
	Strategy = tmio.Strategy
	// StrategyConfig is a strategy plus its tolerances.
	StrategyConfig = tmio.StrategyConfig
	// TracerConfig configures the TMIO tracer.
	TracerConfig = tmio.Config
	// Tracer is the attached TMIO instance.
	Tracer = tmio.Tracer
	// HaccConfig parameterizes the modified HACC-IO benchmark.
	HaccConfig = workloads.HaccConfig
	// WacommConfig parameterizes the WaComM++ model.
	WacommConfig = workloads.WacommConfig
	// PhasedConfig parameterizes the generic checkpointing kernel.
	PhasedConfig = workloads.PhasedConfig
	// IorConfig parameterizes the IOR-style benchmark.
	IorConfig = workloads.IorConfig
	// CheckpointConfig parameterizes the checkpoint/restart pattern with
	// failure injection.
	CheckpointConfig = workloads.CheckpointConfig
	// FSConfig describes the parallel file system.
	FSConfig = pfs.Config
	// NoiseConfig perturbs the file-system capacity over time.
	NoiseConfig = pfs.NoiseConfig
	// BurstBufferConfig interposes a node-local buffer tier for writes.
	BurstBufferConfig = pfs.BurstBufferConfig
	// AgentConfig parameterizes the per-rank I/O agents (sub-request
	// size, interference model, storm latencies).
	AgentConfig = adio.Config
	// CostModel is the α–β interconnect model.
	CostModel = mpi.CostModel
	// InterferenceModel couples background I/O to compute slowdown.
	InterferenceModel = mpi.InterferenceModel
	// Rank is one MPI process; workload mains receive it.
	Rank = mpi.Rank
	// Duration is a span of virtual time (nanoseconds).
	Duration = des.Duration
	// Time is an instant of virtual time.
	Time = des.Time
)

// Limiting strategies.
const (
	None     = tmio.None
	Direct   = tmio.Direct
	UpOnly   = tmio.UpOnly
	Adaptive = tmio.Adaptive
	// Frequent is the most-frequently-used-table strategy (the paper's
	// proposed future improvement).
	Frequent = tmio.Frequent
)

// Convenient virtual-time units.
const (
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// Workload mains.
var (
	// HaccMain builds the modified HACC-IO per-rank main.
	HaccMain = workloads.HaccMain
	// WacommMain builds the WaComM++ per-rank main.
	WacommMain = workloads.WacommMain
	// PhasedMain builds the generic checkpointing kernel main.
	PhasedMain = workloads.PhasedMain
	// IorMain builds the IOR-style benchmark main.
	IorMain = workloads.IorMain
	// CheckpointMain builds the checkpoint/restart main.
	CheckpointMain = workloads.CheckpointMain
	// YoungInterval computes Young's optimal checkpoint interval.
	YoungInterval = workloads.YoungInterval
)

// Options assembles a simulation.
type Options struct {
	// Ranks is the MPI world size. Must be >= 1.
	Ranks int
	// Seed drives all simulation randomness. Defaults to 1.
	Seed int64
	// FS defaults to the Lichtenberg configuration (106 GB/s writes,
	// 120 GB/s reads).
	FS *FSConfig
	// Agent configures the I/O agents.
	Agent AgentConfig
	// Cost is the interconnect model; zero value uses the default.
	Cost CostModel
	// RanksPerNode defaults to 96 (Lichtenberg nodes).
	RanksPerNode int
	// Strategy drives the limiter; the zero value traces without limiting.
	Strategy StrategyConfig
	// Tracer carries the remaining TMIO options; its Strategy field is
	// overridden by Strategy above.
	Tracer TracerConfig
	// NoTracer skips attaching TMIO entirely (raw runs).
	NoTracer bool
}

// Sim is an assembled simulation stack.
type Sim struct {
	Engine *des.Engine
	World  *mpi.World
	FS     *pfs.PFS
	IO     *mpiio.System
	Tracer *tmio.Tracer
}

// NewSim assembles a simulation from opts.
func NewSim(opts Options) *Sim {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	e := des.NewEngine(seed)
	w := mpi.NewWorld(e, mpi.Config{
		Size:         opts.Ranks,
		RanksPerNode: opts.RanksPerNode,
		Cost:         opts.Cost,
	})
	fsCfg := pfs.LichtenbergConfig()
	if opts.FS != nil {
		fsCfg = *opts.FS
	}
	fs := pfs.New(e, fsCfg)
	agentCfg := opts.Agent
	if agentCfg.RanksPerNode <= 0 {
		agentCfg.RanksPerNode = w.Config().RanksPerNode
	}
	sys := mpiio.NewSystem(w, fs, agentCfg)
	s := &Sim{Engine: e, World: w, FS: fs, IO: sys}
	if !opts.NoTracer {
		tcfg := opts.Tracer
		tcfg.Strategy = opts.Strategy
		s.Tracer = tmio.Attach(sys, tcfg)
	}
	return s
}

// Run launches main on every rank, drives the simulation to completion,
// and returns the tracer's report (nil with NoTracer).
func (s *Sim) Run(main func(*Rank)) (*Report, error) {
	if err := s.World.Run(main); err != nil {
		return nil, err
	}
	if s.Tracer == nil {
		return nil, nil
	}
	return s.Tracer.Report(), nil
}

// RunHacc assembles a simulation and runs the modified HACC-IO benchmark.
func RunHacc(opts Options, cfg HaccConfig) (*Report, error) {
	s := NewSim(opts)
	return s.Run(HaccMain(s.IO, cfg))
}

// RunWacomm assembles a simulation and runs the WaComM++ model.
func RunWacomm(opts Options, cfg WacommConfig) (*Report, error) {
	s := NewSim(opts)
	return s.Run(WacommMain(s.IO, cfg))
}

// RunPhased assembles a simulation and runs the generic phased kernel.
func RunPhased(opts Options, cfg PhasedConfig) (*Report, error) {
	s := NewSim(opts)
	return s.Run(PhasedMain(s.IO, cfg))
}

// RunIor assembles a simulation and runs the IOR-style benchmark.
func RunIor(opts Options, cfg IorConfig) (*Report, error) {
	s := NewSim(opts)
	return s.Run(IorMain(s.IO, cfg))
}

// RunCheckpoint assembles a simulation and runs the checkpoint/restart
// pattern with failure injection.
func RunCheckpoint(opts Options, cfg CheckpointConfig) (*Report, error) {
	s := NewSim(opts)
	return s.Run(CheckpointMain(s.IO, cfg))
}

// Cluster-level simulation (the paper's motivating Figs. 1 and 2): several
// jobs share a cluster and its file system; asynchronous jobs can be
// limited to their required bandwidth during contention only.
type (
	// ClusterConfig describes a multi-job scenario.
	ClusterConfig = cluster.Config
	// ClusterResult is a scenario's outcome.
	ClusterResult = cluster.Result
	// JobSpec describes one batch job of a scenario.
	JobSpec = cluster.JobSpec
	// LimitPolicy selects whether asynchronous jobs are limited.
	LimitPolicy = cluster.LimitPolicy
)

// Cluster limit policies.
const (
	NoLimit               = cluster.NoLimit
	LimitDuringContention = cluster.LimitDuringContention
	// LimitPredictive caps async jobs ahead of forecast bursts (FTIO).
	LimitPredictive = cluster.LimitPredictive
	// LimitAlways keeps async jobs capped for their whole lifetime.
	LimitAlways = cluster.LimitAlways
)

// RunCluster executes a multi-job scenario.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// DefaultClusterScenario returns the paper's eight-job Fig. 1 setup.
func DefaultClusterScenario(policy LimitPolicy) ClusterConfig {
	return cluster.DefaultScenario(policy)
}

// PeriodDetection is the result of FTIO-style I/O period detection.
type PeriodDetection = ftio.Result

// DetectPeriod runs frequency-technique phase detection over a report's
// rank-level phases (e.g. report.TPhases): it returns the dominant I/O
// period, its confidence, and a predictor for the next burst — the
// TMIO+FTIO coupling described in the paper's related work.
func DetectPeriod(phases []RegionPhase, bins int) (*PeriodDetection, error) {
	return ftio.DetectPhases(phases, bins)
}

// RegionPhase is a rank-level phase of a report (the elements of
// Report.BPhases / TPhases / BLPhases).
type RegionPhase = region.Phase
